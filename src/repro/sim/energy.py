"""Energy accounting for simulated runs.

Data movement is "the dominant energy, performance, and scalability
bottleneck" (paper Sec. 1); this module turns a run's event counts into an
energy estimate so the NUPEA-vs-baseline comparison can be read in energy
as well as cycles. Event energies are *illustrative relative costs* in the
spirit of standard pJ/op tables (ALU op ~1pJ, NoC hop a fraction of that,
SRAM/cache accesses an order of magnitude more); absolute joules are not
calibrated to the 22nm Monaco implementation, ratios between
configurations are the meaningful output.

The simulator counts the events; :func:`estimate_energy` prices them:

* one PE firing per dataflow instruction (ALU vs control/steering cost),
* one data-NoC hop per routed channel a token crosses (from the compiled
  design's actual routes),
* one arbitration-stage traversal per fabric-memory NoC hop, each way,
* one cache access per memory op, plus a main-memory access on a miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.stats import SimStats

#: Ops priced as full ALU operations.
ALU_OPS = frozenset(("binop", "unop"))
#: Ops priced as lightweight control/steering (combinational CF in Monaco).
CONTROL_OPS = frozenset(
    ("steer", "carry", "merge", "select", "invariant", "join", "inject",
     "source")
)
#: Ops that issue a memory request per firing — the access itself is
#: priced separately (cache/main-memory); this is the issue-side cost of
#: driving the request into the fabric-memory network, i.e. *movement*.
MEM_OPS = frozenset(("load", "store"))


@dataclass(frozen=True)
class EnergyParams:
    """Relative event energies (picojoules, illustrative)."""

    pj_alu: float = 1.0
    pj_control: float = 0.3
    pj_mem_issue: float = 0.5
    pj_noc_hop: float = 0.2
    pj_arb_hop: float = 0.4
    pj_cache_access: float = 6.0
    pj_memory_access: float = 30.0


@dataclass
class EnergyReport:
    """Per-component energy breakdown for one run."""

    compute: float = 0.0
    control: float = 0.0
    #: Issue-side cost of load/store firings. Historically folded into
    #: ``compute``, which deflated the data-movement share — the paper's
    #: Sec. 1 headline metric; it belongs under movement.
    mem_issue: float = 0.0
    data_noc: float = 0.0
    fabric_memory_noc: float = 0.0
    cache: float = 0.0
    main_memory: float = 0.0
    params: EnergyParams = field(default_factory=EnergyParams)

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.control
            + self.mem_issue
            + self.data_noc
            + self.fabric_memory_noc
            + self.cache
            + self.main_memory
        )

    @property
    def data_movement(self) -> float:
        """Everything that is movement rather than computation."""
        return self.total - self.compute - self.control

    def summary(self) -> str:
        parts = [
            f"total {self.total:.0f}pJ",
            f"compute {self.compute:.0f}",
            f"control {self.control:.0f}",
            f"mem-issue {self.mem_issue:.0f}",
            f"data-NoC {self.data_noc:.0f}",
            f"FM-NoC {self.fabric_memory_noc:.0f}",
            f"cache {self.cache:.0f}",
            f"memory {self.main_memory:.0f}",
        ]
        share = self.data_movement / self.total if self.total else 0.0
        parts.append(f"data movement {share:.0%}")
        return "; ".join(parts)

    def to_dict(self) -> dict:
        """Machine-readable breakdown for ``--stats-json``/manifests.

        Derived purely from stable firing/hop/access counters, so the
        block is deterministic and safe inside manifest stable views.
        """
        return {
            "total_pj": round(self.total, 6),
            "compute_pj": round(self.compute, 6),
            "control_pj": round(self.control, 6),
            "mem_issue_pj": round(self.mem_issue, 6),
            "data_noc_pj": round(self.data_noc, 6),
            "fabric_memory_noc_pj": round(self.fabric_memory_noc, 6),
            "cache_pj": round(self.cache, 6),
            "main_memory_pj": round(self.main_memory, 6),
            "data_movement_pj": round(self.data_movement, 6),
            "data_movement_share": round(
                self.data_movement / self.total if self.total else 0.0, 6
            ),
        }


def estimate_energy(
    stats: SimStats, params: EnergyParams | None = None
) -> EnergyReport:
    """Price a run's event counts into an energy breakdown."""
    params = params or EnergyParams()
    report = EnergyReport(params=params)
    # Sorted so float accumulation order never depends on dict history
    # (the report must digest identically across serial/parallel runs).
    for op, count in sorted(stats.firings.items()):
        if op in ALU_OPS:
            report.compute += count * params.pj_alu
        elif op in CONTROL_OPS:
            report.control += count * params.pj_control
        elif op in MEM_OPS:
            report.mem_issue += count * params.pj_mem_issue
        else:
            raise SimulationError(
                f"estimate_energy: op {op!r} has no energy class; add it "
                "to ALU_OPS/CONTROL_OPS/MEM_OPS rather than letting it be "
                "silently mispriced"
            )
    report.data_noc = stats.noc_hops * params.pj_noc_hop
    report.fabric_memory_noc = stats.fmnoc_hops * params.pj_arb_hop
    accesses = stats.mem.loads + stats.mem.stores
    report.cache = accesses * params.pj_cache_access
    report.main_memory = stats.mem.misses * params.pj_memory_access
    return report
