"""Dataflow graph (DFG) representation.

The DFG is the compiler's output and the simulator's input: a graph of
dataflow instructions in Monaco's style (Sec. 4.1 of the paper) — ordered
dataflow with steering control (phi^-1), loop carries, and explicit memory
operations. Each node produces at most one output value per firing, fanned
out to every consumer.

Inputs are either *ports* (edges from a producer node) or *immediates*.
Immediates model Monaco's ``xdata`` program-argument FUs: compile-time
constants or launch-time kernel parameters that are always available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DFGError

#: Operations whose execution touches memory (must be placed on LS PEs).
MEMORY_OPS = frozenset(("load", "store"))

#: All DFG operations.
ALL_OPS = frozenset(
    (
        "source",
        "inject",
        "binop",
        "unop",
        "steer",
        "invariant",
        "carry",
        "merge",
        "select",
        "load",
        "store",
        "join",
    )
)

#: Port names per op, in input order. ``load``/``store`` may append an
#: optional trailing ``ord`` port; ``join`` takes any number of ports.
PORT_NAMES = {
    "source": (),
    "inject": ("trig",),
    "binop": ("lhs", "rhs"),
    "unop": ("a",),
    "steer": ("dec", "val"),
    "invariant": ("val", "dec"),
    "carry": ("init", "back", "dec"),
    "merge": ("dec", "t", "f"),
    "select": ("dec", "t", "f"),
    "load": ("idx",),
    "store": ("idx", "val"),
    "join": (),
}

#: (op, port-name) pairs where an immediate input is legal. Everywhere
#: else the token *cadence* matters, so an always-available immediate
#: would corrupt the ordered-dataflow firing discipline.
IMM_OK = frozenset(
    (
        ("binop", "lhs"),
        ("binop", "rhs"),
        ("unop", "a"),
        ("steer", "val"),
        ("merge", "t"),
        ("merge", "f"),
        ("select", "t"),
        ("select", "f"),
        ("load", "idx"),
        ("store", "idx"),
        ("store", "val"),
        ("invariant", "val"),
    )
)


@dataclass(frozen=True)
class PortRef:
    """An edge input: consume tokens produced by node ``src``."""

    src: int

    def is_imm(self) -> bool:
        return False


@dataclass(frozen=True)
class ImmRef:
    """An immediate input: ``('const', value)`` or ``('param', name)``."""

    kind: str
    value: int | float | str

    def __post_init__(self):
        if self.kind not in ("const", "param"):
            raise DFGError(f"bad immediate kind {self.kind!r}")

    def is_imm(self) -> bool:
        return True

    def resolve(self, params: dict[str, int | float]) -> int | float:
        if self.kind == "const":
            return self.value
        try:
            return params[self.value]
        except KeyError:
            raise DFGError(f"unbound kernel parameter {self.value!r}") from None


Input = PortRef | ImmRef


@dataclass
class Node:
    """One dataflow instruction."""

    nid: int
    op: str
    inputs: list[Input] = field(default_factory=list)
    #: Op-specific attributes: ``opname`` (binop/unop), ``polarity``
    #: (steer: True steers on nonzero deciders), ``array`` (load/store),
    #: ``value`` (inject, an ImmRef), ``has_ord`` (load/store).
    attrs: dict = field(default_factory=dict)
    #: Loop-nesting depth at creation (0 = top level).
    depth: int = 0
    #: Debug tag, e.g. the IR variable this node computes.
    tag: str = ""
    #: Criticality class assigned by analysis: "A", "B", or "C".
    criticality: str = "C"

    def port_name(self, index: int) -> str:
        names = PORT_NAMES[self.op]
        if index < len(names):
            return names[index]
        if self.op in MEMORY_OPS:
            return "ord"
        return f"in{index}"

    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS


class DFG:
    """A dataflow graph: nodes, implicit edges, and launch metadata."""

    def __init__(self, name: str = "dfg"):
        self.name = name
        self.nodes: dict[int, Node] = {}
        self._next_id = 0
        #: Arrays referenced by memory nodes: name -> size in words.
        self.arrays: dict[str, int] = {}
        #: dtype per array ('i' or 'f'), for zero-initialization.
        self.array_dtypes: dict[str, str] = {}
        #: Kernel parameter names expected at launch.
        self.params: list[str] = []

    # -- construction --------------------------------------------------

    def add(
        self,
        op: str,
        inputs: list[Input] | None = None,
        tag: str = "",
        depth: int = 0,
        **attrs,
    ) -> int:
        """Add a node; returns its id."""
        if op not in ALL_OPS:
            raise DFGError(f"unknown op {op!r}")
        node = Node(
            self._next_id,
            op,
            list(inputs or []),
            dict(attrs),
            depth=depth,
            tag=tag,
        )
        self.nodes[node.nid] = node
        self._next_id += 1
        return node.nid

    def declare_array(self, name: str, size: int, dtype: str = "i") -> None:
        if name in self.arrays and self.arrays[name] != size:
            raise DFGError(f"array {name!r} redeclared with different size")
        self.arrays[name] = size
        self.array_dtypes[name] = dtype

    # -- queries ---------------------------------------------------------

    def consumers(self) -> dict[int, list[tuple[int, int]]]:
        """Map producer nid -> list of (consumer nid, input index)."""
        out: dict[int, list[tuple[int, int]]] = {n: [] for n in self.nodes}
        for node in self.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    out[inp.src].append((node.nid, index))
        return out

    def memory_nodes(self) -> list[Node]:
        return [n for n in self.nodes.values() if n.is_memory()]

    def edge_list(self) -> list[tuple[int, int, int]]:
        """All edges as (src, dst, dst_input_index)."""
        edges = []
        for node in self.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    edges.append((inp.src, node.nid, index))
        return edges

    def op_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for node in self.nodes.values():
            hist[node.op] = hist.get(node.op, 0) + 1
        return hist

    def __len__(self) -> int:
        return len(self.nodes)

    # -- validation ------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`DFGError` on failure."""
        sources = [n for n in self.nodes.values() if n.op == "source"]
        if len(sources) > 1:
            raise DFGError("multiple source nodes")
        for node in self.nodes.values():
            self._validate_node(node)

    def _validate_node(self, node: Node) -> None:
        names = PORT_NAMES[node.op]
        arity = len(node.inputs)
        if node.op in ("load", "store"):
            base = len(names)
            ord_count = node.attrs.get(
                "ord_count", 1 if node.attrs.get("has_ord") else 0
            )
            if node.op == "load" and ord_count > 1:
                raise DFGError(
                    f"load node {node.nid}: at most one ordering input"
                )
            expected = base + ord_count
            if arity != expected:
                raise DFGError(
                    f"node {node.nid} ({node.op}): expected {expected} "
                    f"inputs, got {arity}"
                )
            if "array" not in node.attrs:
                raise DFGError(f"node {node.nid} ({node.op}): missing array")
            if node.attrs["array"] not in self.arrays:
                raise DFGError(
                    f"node {node.nid}: array {node.attrs['array']!r} "
                    "not declared"
                )
        elif node.op == "join":
            if arity < 1:
                raise DFGError(f"join node {node.nid} has no inputs")
        elif node.op == "source":
            if arity != 0:
                raise DFGError("source node must have no inputs")
        else:
            if arity != len(names):
                raise DFGError(
                    f"node {node.nid} ({node.op}): expected "
                    f"{len(names)} inputs, got {arity}"
                )
        if node.op == "binop" and "opname" not in node.attrs:
            raise DFGError(f"binop node {node.nid} missing opname")
        if node.op == "unop" and "opname" not in node.attrs:
            raise DFGError(f"unop node {node.nid} missing opname")
        if node.op == "steer" and "polarity" not in node.attrs:
            raise DFGError(f"steer node {node.nid} missing polarity")
        if node.op == "inject" and not isinstance(
            node.attrs.get("value"), ImmRef
        ):
            raise DFGError(f"inject node {node.nid} missing ImmRef value")
        has_edge = False
        for index, inp in enumerate(node.inputs):
            if isinstance(inp, PortRef):
                if inp.src not in self.nodes:
                    raise DFGError(
                        f"node {node.nid}: dangling edge from {inp.src}"
                    )
                has_edge = True
            elif isinstance(inp, ImmRef):
                key = (node.op, node.port_name(index))
                if key not in IMM_OK:
                    raise DFGError(
                        f"node {node.nid} ({node.op}): immediate not "
                        f"allowed on port {node.port_name(index)!r}"
                    )
            else:
                raise DFGError(f"node {node.nid}: bad input {inp!r}")
        if node.op not in ("source",) and not has_edge:
            raise DFGError(
                f"node {node.nid} ({node.op}) has no edge input; it would "
                "be self-firing"
            )
