"""Firing semantics for DFG operations.

Both the untimed interpreter (:mod:`repro.dfg.interp`) and the timed Monaco
simulator (:mod:`repro.sim.engine`) decide node firings through
:func:`decide`, so the *functional* semantics of every op are defined in
exactly one place; the two executors differ only in when a ready node gets
to fire and how long memory takes.

A decision is computed from peeked FIFO heads without mutating anything;
the caller applies it (pop inputs, update state, emit / issue the memory
request) once it has checked machine-specific constraints such as
downstream buffer space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dfg.graph import ImmRef, Node, PortRef
from repro.errors import DFGError
from repro.isa import apply_binop, apply_unop, truthy


class _NoEmit:
    def __repr__(self):
        return "NO_EMIT"


#: Sentinel: the firing consumes tokens but produces no output token.
NO_EMIT = _NoEmit()


@dataclass(frozen=True)
class MemRequest:
    """A memory access produced by firing a load or store node."""

    kind: str  # "load" or "store"
    array: str
    index: int
    value: int | float | None = None  # store data


@dataclass
class Decision:
    """What firing a node does: pop these inputs, emit, touch memory."""

    pops: list[int] = field(default_factory=list)
    emit: object = NO_EMIT
    mem: MemRequest | None = None
    state: dict | None = None  # replacement node state, if changed


class FifoLike:
    """Interface the decision logic needs: peek token availability/values."""

    def has(self, node: Node, index: int) -> bool:
        raise NotImplementedError

    def peek(self, node: Node, index: int):
        raise NotImplementedError


def fresh_state(node: Node) -> dict:
    """Initial private state for a node."""
    if node.op == "source":
        return {"fired": False}
    if node.op == "carry":
        return {"phase": "init"}
    if node.op == "invariant":
        return {"held": False, "value": None}
    return {}


def _ready(node: Node, fifos: FifoLike, index: int) -> bool:
    if isinstance(node.inputs[index], ImmRef):
        return True
    return fifos.has(node, index)


def _value(node: Node, fifos: FifoLike, index: int, params: dict):
    inp = node.inputs[index]
    if isinstance(inp, ImmRef):
        return inp.resolve(params)
    return fifos.peek(node, index)


def _pops(node: Node, *indices: int) -> list[int]:
    """Only port inputs are actually popped; immediates are persistent."""
    return [i for i in indices if isinstance(node.inputs[i], PortRef)]


def decide(
    node: Node, state: dict, fifos: FifoLike, params: dict
) -> Decision | None:
    """Return the firing decision for ``node``, or None if not ready."""
    op = node.op
    if op == "source":
        if state["fired"]:
            return None
        return Decision(emit=0, state={"fired": True})

    if op == "inject":
        if not _ready(node, fifos, 0):
            return None
        value = node.attrs["value"].resolve(params)
        return Decision(pops=_pops(node, 0), emit=value)

    if op in ("binop", "unop"):
        if not all(_ready(node, fifos, i) for i in range(len(node.inputs))):
            return None
        if op == "binop":
            result = apply_binop(
                node.attrs["opname"],
                _value(node, fifos, 0, params),
                _value(node, fifos, 1, params),
            )
            return Decision(pops=_pops(node, 0, 1), emit=result)
        result = apply_unop(
            node.attrs["opname"], _value(node, fifos, 0, params)
        )
        return Decision(pops=_pops(node, 0), emit=result)

    if op == "steer":
        if not (_ready(node, fifos, 0) and _ready(node, fifos, 1)):
            return None
        dec = truthy(_value(node, fifos, 0, params))
        value = _value(node, fifos, 1, params)
        emit = value if dec == node.attrs["polarity"] else NO_EMIT
        return Decision(pops=_pops(node, 0, 1), emit=emit)

    if op == "invariant":
        # Port 0: val (once per region activation); port 1: dec.
        if not state["held"]:
            if not (_ready(node, fifos, 0) and _ready(node, fifos, 1)):
                return None
            dec = truthy(_value(node, fifos, 1, params))
            value = _value(node, fifos, 0, params)
            if dec:
                return Decision(
                    pops=_pops(node, 0, 1),
                    emit=value,
                    state={"held": True, "value": value},
                )
            return Decision(pops=_pops(node, 0, 1), emit=NO_EMIT)
        if not _ready(node, fifos, 1):
            return None
        dec = truthy(_value(node, fifos, 1, params))
        if dec:
            return Decision(pops=_pops(node, 1), emit=state["value"])
        return Decision(
            pops=_pops(node, 1),
            emit=NO_EMIT,
            state={"held": False, "value": None},
        )

    if op == "carry":
        # Ports: init, back, dec.
        if state["phase"] == "init":
            if not _ready(node, fifos, 0):
                return None
            value = _value(node, fifos, 0, params)
            return Decision(
                pops=_pops(node, 0), emit=value, state={"phase": "run"}
            )
        if not _ready(node, fifos, 2):
            return None
        dec = truthy(_value(node, fifos, 2, params))
        if not dec:
            return Decision(
                pops=_pops(node, 2), emit=NO_EMIT, state={"phase": "init"}
            )
        if not _ready(node, fifos, 1):
            return None
        value = _value(node, fifos, 1, params)
        return Decision(pops=_pops(node, 1, 2), emit=value)

    if op == "merge":
        # Ports: dec, t, f. Peek the decider, then wait for the chosen arm.
        if not _ready(node, fifos, 0):
            return None
        dec = truthy(_value(node, fifos, 0, params))
        chosen = 1 if dec else 2
        if not _ready(node, fifos, chosen):
            return None
        value = _value(node, fifos, chosen, params)
        return Decision(pops=_pops(node, 0, chosen), emit=value)

    if op == "select":
        # Eager ternary: both arms are computed unconditionally; consume
        # all three inputs and forward the chosen value.
        if not all(_ready(node, fifos, i) for i in range(3)):
            return None
        dec = truthy(_value(node, fifos, 0, params))
        value = _value(node, fifos, 1 if dec else 2, params)
        return Decision(pops=_pops(node, 0, 1, 2), emit=value)

    if op in ("load", "store"):
        arity = len(node.inputs)
        if not all(_ready(node, fifos, i) for i in range(arity)):
            return None
        index = _value(node, fifos, 0, params)
        if index != int(index):
            raise DFGError(
                f"node {node.nid}: non-integer index {index!r} into "
                f"{node.attrs['array']!r}"
            )
        if op == "load":
            request = MemRequest("load", node.attrs["array"], int(index))
        else:
            request = MemRequest(
                "store",
                node.attrs["array"],
                int(index),
                _value(node, fifos, 1, params),
            )
        # The emitted token (loaded value, or 0 for a store's ordering
        # token) is produced by the executor when the access completes.
        return Decision(pops=_pops(node, *range(arity)), mem=request)

    if op == "join":
        if not all(_ready(node, fifos, i) for i in range(len(node.inputs))):
            return None
        return Decision(pops=_pops(node, *range(len(node.inputs))), emit=0)

    raise DFGError(f"unknown op {op!r}")
