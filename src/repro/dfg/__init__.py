"""Dataflow graph: representation, lowering, analysis, interpretation."""

from repro.dfg.graph import (
    ALL_OPS,
    DFG,
    ImmRef,
    MEMORY_OPS,
    Node,
    PortRef,
)
from repro.dfg.interp import InterpResult, run_dfg
from repro.dfg.lower import eliminate_dead, lower_kernel, mem_token_var
from repro.dfg.ops import NO_EMIT, Decision, MemRequest, decide, fresh_state

__all__ = [
    "ALL_OPS",
    "DFG",
    "Decision",
    "ImmRef",
    "InterpResult",
    "MEMORY_OPS",
    "MemRequest",
    "NO_EMIT",
    "Node",
    "PortRef",
    "decide",
    "eliminate_dead",
    "fresh_state",
    "lower_kernel",
    "mem_token_var",
    "run_dfg",
]
