"""Lowering: structured kernel IR -> dataflow graph.

This pass is the reproduction of effcc's dataflow lowering (paper Sec. 5):
it converts control dependencies into data dependencies via *steering
control* — steer nodes gate values into regions, carry nodes circulate
loop-carried values, merge nodes reconcile conditional definitions, and
invariant nodes replay loop-invariant values each iteration. It also
performs memory ordering by threading per-array ordering tokens through the
same machinery.

Token-cadence discipline
------------------------
The lowering maintains one invariant everywhere: *within a region, every
environment value that is a port produces exactly one token per activation
of that region*. Regions are the kernel body (one activation per launch),
loop bodies (one per iteration), and conditional arms (one per taken
activation). All gating rules follow from it:

* values entering a loop must pass through a carry (read-write or read in
  the condition) or an invariant (read-only, body-only);
* values entering a conditional arm must be steered by the arm's polarity;
* a merge arm must receive tokens only on activations where that arm is
  chosen — so arms are branch-gated values or immediates;
* a carry's ``init`` must never be an immediate (an always-available init
  would let the loop re-launch itself); constants are materialized once
  per activation with an inject node triggered by the region's control
  token.

Memory ordering
---------------
``mode='raw'`` (default) threads two ordering tokens per written array:

* the *store token* (``__memst$A``): produced by each store; loads take it
  as an extra input, so a load waits for the last prior store
  (read-after-write) while independent loads proceed in parallel;
* the *accumulation token* (``__memacc$A``): every load joins its response
  into this token; stores take it as their ordering input, so a store
  waits for all prior loads **and** the previous store (write-after-read
  and write-after-write) without serializing the loads themselves.

``mode='serialize'`` chains every access to a written array through one
token (full serialization). ``mode='none'`` emits no ordering tokens and
is only safe for kernels whose loads and stores never alias.
"""

from __future__ import annotations

from repro.dfg.graph import DFG, ImmRef, Input, PortRef
from repro.errors import LoweringError
from repro.ir.ast import (
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    expr_vars,
)
from repro.isa import apply_binop, apply_unop

#: Lowering-time value: a node id (token stream) or an immediate.
Val = int | ImmRef

MEM_MODES = ("raw", "serialize", "none")


def store_token_var(array: str) -> str:
    """Pseudo-variable holding ``array``'s last-store ordering token."""
    return f"__memst${array}"


def acc_token_var(array: str) -> str:
    """Pseudo-variable accumulating ``array``'s completed accesses."""
    return f"__memacc${array}"


def mem_token_var(array: str) -> str:
    """The single ordering-token pseudo-variable (serialize mode)."""
    return f"__mem${array}"


def lower_kernel(
    kernel: Kernel, mem_mode: str = "raw", strict: bool = False
) -> DFG:
    """Lower ``kernel`` to a validated dataflow graph.

    With ``strict=True`` the static lint pass
    (:mod:`repro.check.lint`) runs over the finished graph and raises
    :class:`~repro.errors.DFGError` on any finding — catching the
    well-formed-but-wrong-by-construction bug family (unpatched
    back-edges, ungated carry inits, cross-region steer cadences) that
    :meth:`repro.dfg.graph.DFG.validate` cannot see.
    """
    if mem_mode not in MEM_MODES:
        raise LoweringError(f"unknown memory-ordering mode {mem_mode!r}")
    dfg = _Lowerer(kernel, mem_mode).lower()
    if strict:
        from repro.check.lint import lint_strict

        lint_strict(dfg)
    return dfg


class _Lowerer:
    def __init__(self, kernel: Kernel, mem_mode: str):
        self.kernel = kernel
        self.mem_mode = mem_mode
        self.dfg = DFG(kernel.name)
        self.dfg.params = list(kernel.params)
        for spec in kernel.arrays:
            self.dfg.declare_array(spec.name, spec.size, spec.dtype)
        self.ordered: set[str] = set()
        if mem_mode != "none":
            self.ordered = {
                s.array
                for s in _walk(kernel.body)
                if isinstance(s, Store)
            }
        self.depth = 0
        self._loop_stack: list[int] = []
        self._loop_counter = 0
        self.dfg.loops_parent: dict[int, int | None] = {}
        self._inject_cache: dict[tuple, int] = {}
        self._steer_cache: dict[tuple, int] = {}
        self._cse_cache: dict[tuple, int] = {}
        self._fresh = 0

    # -- node helpers ------------------------------------------------------

    def add(self, op: str, inputs: list[Input], tag: str = "", **attrs) -> int:
        attrs.setdefault(
            "loop", self._loop_stack[-1] if self._loop_stack else None
        )
        return self.dfg.add(
            op, inputs, tag=tag, depth=self.depth, **attrs
        )

    def as_input(self, val: Val) -> Input:
        return PortRef(val) if isinstance(val, int) else val

    @staticmethod
    def _key(val: Val) -> tuple:
        if isinstance(val, int):
            return ("p", val)
        return ("i", val.kind, val.value)

    def tokenize(self, val: Val, ctl) -> int:
        """Ensure ``val`` is a token stream; inject immediates via ``ctl``."""
        if isinstance(val, int):
            return val
        trigger = ctl()
        key = (trigger, val.kind, val.value)
        nid = self._inject_cache.get(key)
        if nid is None:
            nid = self.add(
                "inject", [PortRef(trigger)], value=val, tag=f"inj:{val.value}"
            )
            self._inject_cache[key] = nid
        return nid

    def binop(self, opname: str, lhs: Val, rhs: Val, ctl, tag: str = "") -> Val:
        if isinstance(lhs, ImmRef) and isinstance(rhs, ImmRef):
            if lhs.kind == "const" and rhs.kind == "const":
                return ImmRef("const", apply_binop(opname, lhs.value, rhs.value))
            lhs = self.tokenize(lhs, ctl)
        key = ("binop", opname, self._key(lhs), self._key(rhs))
        nid = self._cse_cache.get(key)
        if nid is None:
            nid = self.add(
                "binop",
                [self.as_input(lhs), self.as_input(rhs)],
                opname=opname,
                tag=tag,
            )
            self._cse_cache[key] = nid
        return nid

    def unop(self, opname: str, operand: Val, ctl, tag: str = "") -> Val:
        if isinstance(operand, ImmRef):
            if operand.kind == "const":
                return ImmRef("const", apply_unop(opname, operand.value))
            operand = self.tokenize(operand, ctl)
        key = ("unop", opname, self._key(operand))
        nid = self._cse_cache.get(key)
        if nid is None:
            nid = self.add(
                "unop", [self.as_input(operand)], opname=opname, tag=tag
            )
            self._cse_cache[key] = nid
        return nid

    def steer(self, polarity: bool, dec: int, val: Val, tag: str = "") -> int:
        key = ("steer", polarity, dec, self._key(val))
        nid = self._steer_cache.get(key)
        if nid is None:
            nid = self.add(
                "steer",
                [PortRef(dec), self.as_input(val)],
                polarity=polarity,
                tag=tag,
            )
            self._steer_cache[key] = nid
        return nid

    def fresh_name(self, hint: str) -> str:
        self._fresh += 1
        return f"%{hint}@{self._fresh}"

    # -- main entry --------------------------------------------------------

    def token_vars(self, array: str) -> list[str]:
        """The ordering pseudo-variables for one ordered array."""
        if self.mem_mode == "serialize":
            return [mem_token_var(array)]
        return [store_token_var(array), acc_token_var(array)]

    def all_token_vars(self) -> list[str]:
        out: list[str] = []
        for array in sorted(self.ordered):
            out.extend(self.token_vars(array))
        return out

    def flatten_tokens(self, env: dict[str, Val], ctl) -> None:
        """Collapse pending accumulation tuples into single tokens.

        Called before any region boundary (loop, conditional, parallel
        fork) so the carry/steer/merge machinery only ever sees scalar
        token values.
        """
        if self.mem_mode == "serialize":
            return
        for array in sorted(self.ordered):
            acc = acc_token_var(array)
            value = env.get(acc)
            if isinstance(value, tuple):
                if len(value) == 1:
                    env[acc] = value[0]
                else:
                    env[acc] = self.add(
                        "join",
                        [self.as_input(v) for v in value],
                        tag=f"acc:{array}",
                    )

    def lower(self) -> DFG:
        source = self.add("source", [], tag="launch")
        env: dict[str, Val] = {
            p: ImmRef("param", p) for p in self.kernel.params
        }
        for token in self.all_token_vars():
            env[token] = source
        self.lower_block(self.kernel.body, env, lambda: source)
        eliminate_dead(self.dfg)
        self.dfg.validate()
        return self.dfg

    # -- expressions -------------------------------------------------------

    def lower_expr(self, expr: Expr, env: dict[str, Val], ctl) -> Val:
        if isinstance(expr, Const):
            return ImmRef("const", expr.value)
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise LoweringError(
                    f"undefined variable {expr.name!r} during lowering"
                ) from None
        if isinstance(expr, BinOp):
            lhs = self.lower_expr(expr.lhs, env, ctl)
            rhs = self.lower_expr(expr.rhs, env, ctl)
            return self.binop(expr.op, lhs, rhs, ctl)
        if isinstance(expr, UnOp):
            operand = self.lower_expr(expr.operand, env, ctl)
            return self.unop(expr.op, operand, ctl)
        if isinstance(expr, Select):
            return self._lower_select(expr, env, ctl)
        raise LoweringError(f"unknown expression {expr!r}")

    def _lower_select(self, expr: Select, env: dict[str, Val], ctl) -> Val:
        cond = self.lower_expr(expr.cond, env, ctl)
        on_true = self.lower_expr(expr.on_true, env, ctl)
        on_false = self.lower_expr(expr.on_false, env, ctl)
        if isinstance(cond, ImmRef) and cond.kind == "const":
            return on_true if cond.value else on_false
        dec = self.tokenize(cond, ctl)
        key = ("select", dec, self._key(on_true), self._key(on_false))
        nid = self._cse_cache.get(key)
        if nid is None:
            nid = self.add(
                "select",
                [
                    PortRef(dec),
                    self.as_input(on_true),
                    self.as_input(on_false),
                ],
                tag="select",
            )
            self._cse_cache[key] = nid
        return nid

    # -- statements --------------------------------------------------------

    def lower_block(self, body: list[Stmt], env: dict[str, Val], ctl) -> None:
        for stmt in body:
            self.lower_stmt(stmt, env, ctl)

    def lower_stmt(self, stmt: Stmt, env: dict[str, Val], ctl) -> None:
        if isinstance(stmt, Assign):
            env[stmt.var] = self.lower_expr(stmt.expr, env, ctl)
        elif isinstance(stmt, Load):
            self._lower_load(stmt, env, ctl)
        elif isinstance(stmt, Store):
            self._lower_store(stmt, env, ctl)
        elif isinstance(stmt, If):
            self._lower_if(stmt, env, ctl)
        elif isinstance(stmt, While):
            self._lower_while(stmt, env, ctl)
        elif isinstance(stmt, (For, ParFor)):
            self._lower_for(stmt, env, ctl)
        elif isinstance(stmt, Par):
            self._lower_par(stmt, env, ctl)
        else:
            raise LoweringError(
                f"unknown statement type {type(stmt).__name__}"
            )

    def _lower_load(self, stmt: Load, env: dict[str, Val], ctl) -> None:
        index = self.lower_expr(stmt.index, env, ctl)
        inputs = [self.as_input(index)]
        has_ord = stmt.array in self.ordered
        if has_ord:
            if self.mem_mode == "serialize":
                token = env[mem_token_var(stmt.array)]
            else:
                token = env[store_token_var(stmt.array)]
            inputs.append(PortRef(self.tokenize(token, ctl)))
        elif isinstance(index, ImmRef):
            inputs = [PortRef(self.tokenize(index, ctl))]
        nid = self.add(
            "load",
            inputs,
            array=stmt.array,
            has_ord=has_ord,
            ord_count=1 if has_ord else 0,
            tag=stmt.var,
        )
        env[stmt.var] = nid
        if has_ord:
            if self.mem_mode == "serialize":
                env[mem_token_var(stmt.array)] = nid
            else:
                # Record the load in the accumulation token so a later
                # store waits for it (write-after-read). Pending tokens
                # stay as a tuple until a store or region boundary
                # consumes them, avoiding per-load join nodes.
                acc = acc_token_var(stmt.array)
                current = env[acc]
                if isinstance(current, tuple):
                    env[acc] = current + (nid,)
                else:
                    env[acc] = (current, nid)

    def _lower_store(self, stmt: Store, env: dict[str, Val], ctl) -> None:
        index = self.lower_expr(stmt.index, env, ctl)
        value = self.lower_expr(stmt.value, env, ctl)
        inputs = [self.as_input(index), self.as_input(value)]
        has_ord = stmt.array in self.ordered
        ord_count = 0
        if has_ord:
            if self.mem_mode == "serialize":
                tokens: tuple = (env[mem_token_var(stmt.array)],)
            else:
                pending = env[acc_token_var(stmt.array)]
                tokens = pending if isinstance(pending, tuple) else (pending,)
            for token in tokens:
                inputs.append(PortRef(self.tokenize(token, ctl)))
            ord_count = len(tokens)
        elif isinstance(index, ImmRef) and isinstance(value, ImmRef):
            inputs[0] = PortRef(self.tokenize(index, ctl))
        nid = self.add(
            "store",
            inputs,
            array=stmt.array,
            has_ord=has_ord,
            ord_count=ord_count,
            tag=f"st:{stmt.array}",
        )
        if has_ord:
            for token in self.token_vars(stmt.array):
                env[token] = nid

    # -- conditionals ------------------------------------------------------

    def _lower_if(self, stmt: If, env: dict[str, Val], ctl) -> None:
        cond = self.lower_expr(stmt.cond, env, ctl)
        if isinstance(cond, ImmRef) and cond.kind == "const":
            taken = stmt.then_body if cond.value else stmt.else_body
            self.lower_block(taken, env, ctl)
            return
        self.flatten_tokens(env, ctl)
        dec = self.tokenize(cond, ctl)
        then_reads, then_writes = self._reads_writes(stmt.then_body)
        else_reads, else_writes = self._reads_writes(stmt.else_body)

        env_t = dict(env)
        for var in [v for v in env if v in then_reads]:
            if isinstance(env[var], int):
                env_t[var] = self.steer(True, dec, env[var], tag=f"gateT:{var}")
        env_f = dict(env)
        for var in [v for v in env if v in else_reads]:
            if isinstance(env[var], int):
                env_f[var] = self.steer(False, dec, env[var], tag=f"gateF:{var}")

        ctl_t = lambda: self.steer(True, dec, dec, tag="ctlT")  # noqa: E731
        ctl_f = lambda: self.steer(False, dec, dec, tag="ctlF")  # noqa: E731
        self.lower_block(stmt.then_body, env_t, ctl_t)
        self.flatten_tokens(env_t, ctl_t)
        self.lower_block(stmt.else_body, env_f, ctl_f)
        self.flatten_tokens(env_f, ctl_f)

        for var in self._merge_vars(env, env_t, env_f, then_writes, else_writes):
            tv = self._arm_value(var, env, env_t, then_writes, True, dec)
            fv = self._arm_value(var, env, env_f, else_writes, False, dec)
            if (
                isinstance(tv, ImmRef)
                and isinstance(fv, ImmRef)
                and tv == fv
            ):
                env[var] = tv
                continue
            env[var] = self.add(
                "merge",
                [PortRef(dec), self.as_input(tv), self.as_input(fv)],
                tag=f"phi:{var}",
            )

    def _merge_vars(self, env, env_t, env_f, then_writes, else_writes):
        ordered: list[str] = []
        for var in env:
            if (var in then_writes or var in else_writes) and (
                var in env_t and var in env_f
            ):
                ordered.append(var)
        for var in env_t:
            if var not in env and var in env_f and var not in ordered:
                ordered.append(var)
        return ordered

    def _arm_value(self, var, env, arm_env, arm_writes, polarity, dec) -> Val:
        value = arm_env[var] if var in arm_env else env[var]
        if var in arm_writes or var not in env:
            return value
        # Unmodified in this arm: the merge needs an arm-gated copy of the
        # incoming value (immediates are always available, so pass through).
        incoming = env[var]
        if isinstance(incoming, ImmRef):
            return incoming
        return self.steer(polarity, dec, incoming, tag=f"gate:{var}")

    # -- loops ---------------------------------------------------------

    def _lower_while(self, stmt: While, env: dict[str, Val], ctl) -> None:
        self.flatten_tokens(env, ctl)
        body_reads, body_writes = self._reads_writes(stmt.body)
        cond_reads = expr_vars(stmt.cond)

        carried_rw = [v for v in env if v in body_writes]
        cond_ro = [
            v
            for v in env
            if v in cond_reads
            and v not in body_writes
            and isinstance(env[v], int)
        ]
        body_ro = [
            v
            for v in env
            if v in body_reads
            and v not in body_writes
            and v not in cond_ro
            and isinstance(env[v], int)
        ]

        if not cond_reads & body_writes:
            raise LoweringError(
                "while condition is loop-invariant (nothing it reads is "
                "modified by the body), so the loop runs zero or infinite "
                "iterations"
            )

        loop_id = self._push_loop()
        placeholder = PortRef(-1)
        carries: dict[str, int] = {}
        for var in carried_rw + cond_ro:
            init = env[var]
            init_input = (
                PortRef(init)
                if isinstance(init, int)
                else PortRef(self.tokenize(init, ctl))
            )
            carries[var] = self.add(
                "carry",
                [init_input, placeholder, placeholder],
                tag=f"carry:{var}",
            )

        hdr_env = dict(env)
        hdr_env.update(carries)
        first_carry = carries[(carried_rw + cond_ro)[0]]
        cond = self.lower_expr(stmt.cond, hdr_env, lambda: first_carry)
        if isinstance(cond, ImmRef):
            raise LoweringError("while condition lowered to a constant")

        body_env = dict(env)
        for var in carried_rw:
            # Always gate, even when the body never reads the variable:
            # nested regions consume the binding (e.g. as a carry init),
            # and an ungated carry output has header cadence, not
            # iteration cadence.
            body_env[var] = self.steer(
                True, cond, carries[var], tag=f"into:{var}"
            )
        for var in cond_ro:
            if var in body_reads:
                body_env[var] = self.steer(
                    True, cond, carries[var], tag=f"into:{var}"
                )
        for var in body_ro:
            body_env[var] = self.add(
                "invariant",
                [self.as_input(env[var]), PortRef(cond)],
                tag=f"inv:{var}",
            )

        body_ctl = lambda: self.steer(True, cond, cond, tag="ctlL")  # noqa: E731
        self.depth += 1
        self.lower_block(stmt.body, body_env, body_ctl)
        self.flatten_tokens(body_env, body_ctl)
        self.depth -= 1

        for var in carried_rw:
            back = body_env[var]
            if isinstance(back, ImmRef):
                back = self.tokenize(back, body_ctl)
            node = self.dfg.nodes[carries[var]]
            node.inputs[1] = PortRef(back)
            node.inputs[2] = PortRef(cond)
        for var in cond_ro:
            back = self.steer(True, cond, carries[var], tag=f"into:{var}")
            node = self.dfg.nodes[carries[var]]
            node.inputs[1] = PortRef(back)
            node.inputs[2] = PortRef(cond)

        for var in carried_rw:
            env[var] = self.steer(
                False, cond, carries[var], tag=f"exit:{var}"
            )
        self._pop_loop(loop_id)

    def _lower_for(self, stmt: For | ParFor, env: dict[str, Val], ctl) -> None:
        # Desugar to a while loop with bounds hoisted so they are evaluated
        # once (matching the IR interpreter's semantics). A shadowed outer
        # binding (possible in unvalidated probe kernels) is restored.
        shadowed = env.get(stmt.var)
        env[stmt.var] = self.lower_expr(stmt.lo, env, ctl)
        hi_name = self.fresh_name(f"hi_{stmt.var}")
        env[hi_name] = self.lower_expr(stmt.hi, env, ctl)
        step_name = self.fresh_name(f"step_{stmt.var}")
        env[step_name] = self.lower_expr(stmt.step, env, ctl)
        bump = Assign(
            stmt.var, BinOp("+", Var(stmt.var), Var(step_name))
        )
        loop = While(
            BinOp("<", Var(stmt.var), Var(hi_name)), list(stmt.body) + [bump]
        )
        self._lower_while(loop, env, ctl)
        if shadowed is None:
            del env[stmt.var]
        else:
            env[stmt.var] = shadowed
        del env[hi_name]
        del env[step_name]

    def _lower_par(self, stmt: Par, env: dict[str, Val], ctl) -> None:
        self.flatten_tokens(env, ctl)
        finals: dict[str, list[Val]] = {}
        for block in stmt.blocks:
            block_env = dict(env)
            self.lower_block(block, block_env, ctl)
            self.flatten_tokens(block_env, ctl)
            for token in self.all_token_vars():
                if block_env.get(token) != env.get(token):
                    finals.setdefault(token, []).append(block_env[token])
        for token, parts in finals.items():
            if len(parts) == 1:
                env[token] = parts[0]
            else:
                env[token] = self.add(
                    "join",
                    [self.as_input(p) for p in parts],
                    tag=f"join:{token}",
                )

    # -- bookkeeping -------------------------------------------------------

    def _push_loop(self) -> int:
        self._loop_counter += 1
        loop_id = self._loop_counter
        parent = self._loop_stack[-1] if self._loop_stack else None
        self.dfg.loops_parent[loop_id] = parent
        self._loop_stack.append(loop_id)
        return loop_id

    def _pop_loop(self, loop_id: int) -> None:
        popped = self._loop_stack.pop()
        assert popped == loop_id

    def _reads_writes(self, body: list[Stmt]) -> tuple[set[str], set[str]]:
        """Over-approximate variable reads/writes of ``body``.

        Memory-ordering pseudo-variables are included according to the
        ordering mode: loads read the array's token; stores read and write
        it; in ``serialize`` mode loads also write it.

        A variable *written inside a nested loop* also counts as a read of
        the enclosing block: lowering turns it into a loop-carried value
        whose carry node consumes the incoming binding as its init, so the
        surrounding region (an ``If`` arm, say) must gate that binding to
        region cadence exactly as it would any read. Without this, a loop
        under an untaken branch still receives the ungated init token,
        which then wedges in the loop's ``exit:`` steer — a token leak.
        """
        reads: set[str] = set()
        writes: set[str] = set()
        for stmt in _walk(body):
            if isinstance(stmt, Assign):
                reads |= expr_vars(stmt.expr)
                writes.add(stmt.var)
            elif isinstance(stmt, Load):
                reads |= expr_vars(stmt.index)
                writes.add(stmt.var)
                if stmt.array in self.ordered:
                    if self.mem_mode == "serialize":
                        reads.add(mem_token_var(stmt.array))
                        writes.add(mem_token_var(stmt.array))
                    else:
                        reads.add(store_token_var(stmt.array))
                        reads.add(acc_token_var(stmt.array))
                        writes.add(acc_token_var(stmt.array))
            elif isinstance(stmt, Store):
                reads |= expr_vars(stmt.index) | expr_vars(stmt.value)
                if stmt.array in self.ordered:
                    for token in self.token_vars(stmt.array):
                        reads.add(token)
                        writes.add(token)
            elif isinstance(stmt, If):
                reads |= expr_vars(stmt.cond)
            elif isinstance(stmt, While):
                reads |= expr_vars(stmt.cond)
                # Loop-carried writes consume their init (see docstring).
                reads |= self._reads_writes(stmt.body)[1]
            elif isinstance(stmt, (For, ParFor)):
                reads |= (
                    expr_vars(stmt.lo)
                    | expr_vars(stmt.hi)
                    | expr_vars(stmt.step)
                )
                writes.add(stmt.var)
                reads |= self._reads_writes(stmt.body)[1]
        return reads, writes


def _walk(body: list[Stmt]):
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from _walk(stmt.then_body)
            yield from _walk(stmt.else_body)
        elif isinstance(stmt, (While, For, ParFor)):
            yield from _walk(stmt.body)
        elif isinstance(stmt, Par):
            for block in stmt.blocks:
                yield from _walk(block)


def eliminate_dead(dfg: DFG) -> int:
    """Remove nodes with no path to a store; returns the removal count.

    Stores are the only observable effects, so everything else is live only
    if a store transitively depends on it. Kernels without stores are left
    untouched (nothing is observable; keep the graph for inspection).
    """
    stores = [n.nid for n in dfg.nodes.values() if n.op == "store"]
    if not stores:
        return 0
    live: set[int] = set()
    stack = list(stores)
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for inp in dfg.nodes[nid].inputs:
            if isinstance(inp, PortRef) and inp.src not in live:
                stack.append(inp.src)
    dead = [nid for nid in dfg.nodes if nid not in live]
    for nid in dead:
        del dfg.nodes[nid]
    return len(dead)
