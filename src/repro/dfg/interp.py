"""Untimed DFG interpreter.

Executes a dataflow graph with unbounded token FIFOs and zero-latency
memory. This is the compiler's functional oracle: it must agree with the
IR interpreter on final memory for every kernel (and the timed simulator
must agree with both).

The scheduling ``order`` is configurable ('fifo', 'lifo', 'random') so tests
can shake out ordering races: a correctly lowered graph produces identical
results under every admissible firing order.
"""

from __future__ import annotations

import random as _random
from collections import deque

from repro.dfg.graph import DFG, Node, PortRef
from repro.dfg.ops import NO_EMIT, FifoLike, decide, fresh_state
from repro.errors import DFGError

#: Safety net against graphs that never quiesce.
MAX_FIRINGS = 100_000_000


class _Fifos(FifoLike):
    def __init__(self, dfg: DFG):
        self.queues: dict[tuple[int, int], deque] = {}
        for node in dfg.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    self.queues[(node.nid, index)] = deque()

    def has(self, node: Node, index: int) -> bool:
        return bool(self.queues[(node.nid, index)])

    def peek(self, node: Node, index: int):
        return self.queues[(node.nid, index)][0]

    def pop(self, node: Node, index: int):
        return self.queues[(node.nid, index)].popleft()

    def push(self, nid: int, index: int, value) -> None:
        self.queues[(nid, index)].append(value)

    def residue(self) -> list[tuple[int, int, int]]:
        """Non-empty FIFOs at quiescence: (node, port, depth)."""
        return [
            (nid, idx, len(q))
            for (nid, idx), q in self.queues.items()
            if q
        ]


class InterpResult:
    """Final memory plus execution statistics."""

    def __init__(
        self,
        memory: dict[str, list],
        firings: dict[str, int],
        node_firings: dict[int, int] | None = None,
    ):
        self.memory = memory
        #: Firing counts per op kind.
        self.firings = firings
        #: Firing counts per node id (the profile used by profile-guided
        #: criticality analysis).
        self.node_firings = node_firings or {}

    @property
    def total_firings(self) -> int:
        return sum(self.firings.values())


def run_dfg(
    dfg: DFG,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    order: str = "fifo",
    seed: int = 0,
    max_firings: int = MAX_FIRINGS,
) -> InterpResult:
    """Execute ``dfg`` to quiescence and return final memory + stats.

    Raises :class:`DFGError` if tokens remain in flight at quiescence or if
    any node is left mid-protocol (a carry outside its INIT phase, a held
    invariant) — both indicate a lowering bug.
    """
    params = dict(params or {})
    memory: dict[str, list] = {}
    for name, size in dfg.arrays.items():
        if arrays and name in arrays:
            data = list(arrays[name])
            if len(data) != size:
                raise DFGError(
                    f"array {name!r}: got {len(data)} words, declared {size}"
                )
        else:
            zero = 0 if dfg.array_dtypes.get(name, "i") == "i" else 0.0
            data = [zero] * size
        memory[name] = data

    fifos = _Fifos(dfg)
    states = {nid: fresh_state(node) for nid, node in dfg.nodes.items()}
    consumers = dfg.consumers()
    rng = _random.Random(seed)

    pending: deque[int] = deque(sorted(dfg.nodes))
    in_pending = set(pending)
    firings: dict[str, int] = {}
    node_firings: dict[int, int] = {}
    fired_total = 0

    def wake(nid: int) -> None:
        if nid not in in_pending:
            pending.append(nid)
            in_pending.add(nid)

    while pending:
        if order == "fifo":
            nid = pending.popleft()
        elif order == "lifo":
            nid = pending.pop()
        elif order == "random":
            index = rng.randrange(len(pending))
            pending[index], pending[-1] = pending[-1], pending[index]
            nid = pending.pop()
        else:
            raise DFGError(f"unknown scheduling order {order!r}")
        in_pending.discard(nid)
        node = dfg.nodes[nid]
        decision = decide(node, states[nid], fifos, params)
        if decision is None:
            continue
        fired_total += 1
        if fired_total > max_firings:
            raise DFGError("DFG exceeded the firing safety limit")
        firings[node.op] = firings.get(node.op, 0) + 1
        node_firings[nid] = node_firings.get(nid, 0) + 1
        for index in decision.pops:
            fifos.pop(node, index)
        if decision.state is not None:
            states[nid].update(decision.state)
        emit = decision.emit
        if decision.mem is not None:
            request = decision.mem
            data = memory[request.array]
            if not 0 <= request.index < len(data):
                raise DFGError(
                    f"node {nid}: index {request.index} out of bounds for "
                    f"array {request.array!r} of size {len(data)}"
                )
            if request.kind == "load":
                emit = data[request.index]
            else:
                data[request.index] = request.value
                emit = 0  # the store's ordering token
        if emit is not NO_EMIT:
            for consumer, index in consumers[nid]:
                fifos.push(consumer, index, emit)
                wake(consumer)
        # The node may be ready again immediately (queued tokens).
        wake(nid)

    _check_quiescent(dfg, fifos, states)
    return InterpResult(memory, firings, node_firings)


def _check_quiescent(dfg: DFG, fifos: _Fifos, states: dict) -> None:
    residue = fifos.residue()
    if residue:
        nid, idx, depth = residue[0]
        node = dfg.nodes[nid]
        raise DFGError(
            f"token leak: {len(residue)} FIFOs non-empty at quiescence; "
            f"first: node {nid} ({node.op} {node.tag!r}) port "
            f"{node.port_name(idx)} holds {depth} token(s)"
        )
    for nid, state in states.items():
        node = dfg.nodes[nid]
        if node.op == "carry" and state["phase"] != "init":
            raise DFGError(
                f"carry node {nid} ({node.tag!r}) left in RUN phase"
            )
        if node.op == "invariant" and state["held"]:
            raise DFGError(
                f"invariant node {nid} ({node.tag!r}) left holding a value"
            )
