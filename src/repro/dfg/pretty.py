"""DFG dumps: a readable text listing and Graphviz dot export."""

from __future__ import annotations

from repro.dfg.graph import DFG, Node, PortRef


def _input_label(node: Node, index: int) -> str:
    inp = node.inputs[index]
    name = node.port_name(index)
    if isinstance(inp, PortRef):
        return f"{name}=%{inp.src}"
    if inp.kind == "const":
        return f"{name}={inp.value!r}"
    return f"{name}=${inp.value}"


def format_node(node: Node) -> str:
    detail = node.attrs.get("opname") or node.attrs.get("array") or ""
    if node.op == "steer":
        detail = "T" if node.attrs.get("polarity") else "F"
    if node.op == "inject":
        imm = node.attrs["value"]
        detail = (
            repr(imm.value) if imm.kind == "const" else f"${imm.value}"
        )
    inputs = ", ".join(
        _input_label(node, i) for i in range(len(node.inputs))
    )
    klass = f" #{node.criticality}" if node.is_memory() else ""
    tag = f"  ; {node.tag}" if node.tag else ""
    return (
        f"%{node.nid:<4d} = {node.op}"
        f"{f'.{detail}' if detail else ''}({inputs})"
        f"{klass}{tag}"
    )


def format_dfg(dfg: DFG) -> str:
    """Text listing of the whole graph, in node-id order."""
    lines = [
        f"dfg {dfg.name!r}: {len(dfg)} nodes, "
        f"{len(dfg.edge_list())} edges, params={dfg.params}"
    ]
    for name, size in dfg.arrays.items():
        lines.append(f"  array {name}[{size}]")
    for nid in sorted(dfg.nodes):
        lines.append("  " + format_node(dfg.nodes[nid]))
    return "\n".join(lines)


_SHAPES = {
    "load": "box",
    "store": "box",
    "carry": "diamond",
    "merge": "diamond",
    "steer": "triangle",
    "invariant": "diamond",
    "source": "doublecircle",
    "join": "house",
}

_CRIT_COLORS = {"A": "red", "B": "orange", "C": "gray70"}


def to_dot(dfg: DFG) -> str:
    """Graphviz dot text; memory nodes colored by criticality class."""
    lines = [f'digraph "{dfg.name}" {{', "  rankdir=TB;"]
    for nid in sorted(dfg.nodes):
        node = dfg.nodes[nid]
        label = node.op
        if node.op in ("binop", "unop"):
            label = node.attrs["opname"]
        elif node.op in ("load", "store"):
            label = f"{node.op} {node.attrs['array']}"
        elif node.op == "steer":
            label = "steer:T" if node.attrs["polarity"] else "steer:F"
        if node.tag:
            label += f"\\n{node.tag}"
        shape = _SHAPES.get(node.op, "ellipse")
        color = ""
        if node.is_memory():
            color = f', color={_CRIT_COLORS[node.criticality]}, penwidth=2'
        lines.append(
            f'  n{nid} [label="%{nid} {label}", shape={shape}{color}];'
        )
    for src, dst, index in dfg.edge_list():
        port = dfg.nodes[dst].port_name(index)
        style = ' [style=dashed]' if port in ("dec", "ord") else ""
        lines.append(f"  n{src} -> n{dst}{style};")
    lines.append("}")
    return "\n".join(lines)
