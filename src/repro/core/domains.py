"""NUPEA domains: groups of LS PEs sharing memory latency and bandwidth.

A spatial NUPEA architecture abstracts fabric-to-memory communication as an
*ordered set* of domains, D0 <= D1 <= ... sorted by proximity to memory
(paper Sec. 3). Domain 0 is fastest: its LS PEs connect directly to memory
ports with no arbitration; each further domain adds one arbitration hop
(one system-clock cycle) on both the request and response path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchError


@dataclass(frozen=True)
class NUPEADomain:
    """One NUPEA domain.

    ``index`` orders domains by proximity to memory (0 = closest).
    ``arbiter_hops`` is the number of arbitration stages a request from
    this domain traverses before reaching a memory port (0 for D0).
    ``columns`` lists the fabric columns whose LS PEs belong to the domain,
    ordered closest-to-memory first.
    """

    index: int
    arbiter_hops: int
    columns: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.index < 0:
            raise ArchError("domain index must be non-negative")
        if self.arbiter_hops < 0:
            raise ArchError("arbiter hops must be non-negative")

    @property
    def name(self) -> str:
        return f"D{self.index}"

    def column_rank(self, column: int) -> int:
        """Preference rank of ``column`` within the domain (0 = closest)."""
        try:
            return self.columns.index(column)
        except ValueError:
            raise ArchError(
                f"column {column} is not part of domain {self.name}"
            ) from None


def validate_domain_order(domains: list[NUPEADomain]) -> None:
    """Check domains form the ordered set NUPEA requires."""
    if not domains:
        raise ArchError("a NUPEA fabric needs at least one domain")
    for i, domain in enumerate(domains):
        if domain.index != i:
            raise ArchError(
                f"domain at position {i} has index {domain.index}"
            )
    hops = [d.arbiter_hops for d in domains]
    if hops != sorted(hops):
        raise ArchError(
            "domains must be ordered by non-decreasing arbiter hops"
        )


def placement_preference(
    domains: list[NUPEADomain],
) -> list[tuple[int, int]]:
    """The paper's PnR preference order, best first.

    Returns (domain index, column rank) pairs ordered
    ``D0.c0 <= D0.c1 <= ... <= D1.c0 <= ...`` — i.e. fill the fastest
    domain column-by-column before spilling to slower domains. Spreading
    across columns of one domain happens naturally because each *row* has
    its own slice of the fabric-memory NoC.
    """
    order: list[tuple[int, int]] = []
    for domain in domains:
        for rank in range(len(domain.columns)):
            order.append((domain.index, rank))
    return order
