"""NUPEA placement policies (the Fig. 12 ablation axes).

The three policies evaluated in the paper:

* ``DOMAIN_UNAWARE`` — PnR has no incentive to place memory instructions
  near memory; only communication locality matters.
* ``DOMAIN_AWARE`` ("Only-Domain-Aware") — memory instructions prefer fast
  NUPEA domains, but all memory instructions are treated alike.
* ``EFFCC`` — full effcc heuristic: domain awareness fused with
  criticality, so class-A loads get first claim on the fastest domains,
  then class-B, then the rest.

A policy contributes a *throughput-reduction factor* to the annealer's
objective: the estimated memory latency of each memory node, weighted by
its criticality class (Sec. 5, "NUPEA-aware PnR").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PnRError

#: Latency-rank penalty of one column step within a domain, relative to a
#: full arbitration hop between domains.
COLUMN_STEP = 0.25


@dataclass(frozen=True)
class PlacementPolicy:
    """Weights applied to the estimated memory latency per node class."""

    name: str
    weight_a: float
    weight_b: float
    weight_c: float

    def weight(self, criticality: str) -> float:
        if criticality == "A":
            return self.weight_a
        if criticality == "B":
            return self.weight_b
        if criticality == "C":
            return self.weight_c
        raise PnRError(f"unknown criticality class {criticality!r}")

    def node_weight(
        self,
        criticality: str,
        nid: int,
        overrides: dict[int, float] | None = None,
    ) -> float:
        """Per-node placement weight: the override when one exists.

        ``overrides`` maps DFG node id -> weight (e.g. derived from
        measured critical-path blame, see :mod:`repro.exp.fdo`); nodes
        absent from the map — and every node when the map is ``None`` —
        fall back to the class weight, returning the *identical float*
        :meth:`weight` would, so the no-override path is bit-identical
        to the historical class-weight path.
        """
        if overrides is not None:
            override = overrides.get(nid)
            if override is not None:
                return float(override)
        return self.weight(criticality)

    @property
    def domain_aware(self) -> bool:
        return (self.weight_a, self.weight_b, self.weight_c) != (0, 0, 0)

    @property
    def criticality_aware(self) -> bool:
        """Whether the policy distinguishes criticality classes."""
        return not (self.weight_a == self.weight_b == self.weight_c)


DOMAIN_UNAWARE = PlacementPolicy("domain-unaware", 0.0, 0.0, 0.0)
DOMAIN_AWARE = PlacementPolicy("only-domain-aware", 1.0, 1.0, 1.0)
EFFCC = PlacementPolicy("effcc", 8.0, 3.0, 1.0)

POLICIES = {
    policy.name: policy for policy in (DOMAIN_UNAWARE, DOMAIN_AWARE, EFFCC)
}


def get_policy(name: str) -> PlacementPolicy:
    try:
        return POLICIES[name]
    except KeyError:
        raise PnRError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None


def domain_latency_rank(arbiter_hops: int, column_rank: int) -> float:
    """Scalar preference rank of an LS PE slot, lower = better.

    Encodes the paper's ordering ``... D1.c0 <= D0.c2 <= D0.c1 <= D0.c0``:
    a column step costs a fraction of an arbitration hop, so all columns of
    a faster domain beat the best column of a slower one.
    """
    return arbiter_hops + COLUMN_STEP * column_rank
