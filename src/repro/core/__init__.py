"""The paper's primary contribution: NUPEA domains, criticality, policies."""

from repro.core.criticality import (
    CriticalityReport,
    analyze_criticality,
    dependence_graph,
    format_report,
    leaf_loops,
)
from repro.core.domains import (
    NUPEADomain,
    placement_preference,
    validate_domain_order,
)
from repro.core.policy import (
    DOMAIN_AWARE,
    DOMAIN_UNAWARE,
    EFFCC,
    POLICIES,
    PlacementPolicy,
    domain_latency_rank,
    get_policy,
)
from repro.core.profile import (
    ProfileReport,
    analyze_with_profile,
    profile_dfg,
)

__all__ = [
    "CriticalityReport",
    "DOMAIN_AWARE",
    "DOMAIN_UNAWARE",
    "EFFCC",
    "NUPEADomain",
    "POLICIES",
    "PlacementPolicy",
    "ProfileReport",
    "analyze_criticality",
    "analyze_with_profile",
    "dependence_graph",
    "domain_latency_rank",
    "format_report",
    "get_policy",
    "leaf_loops",
    "placement_preference",
    "profile_dfg",
    "validate_domain_order",
]
