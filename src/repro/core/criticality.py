"""Critical-load analysis (paper Sec. 5, "Identifying critical loads").

effcc's heuristics categorize memory instructions as:

* class **A** — *critical* loads that contribute to long initiation
  intervals: loads on a loop-governing recurrence. In the DFG these are
  exactly the loads inside a strongly connected component that also
  contains a carry node — the load's value feeds, through the dependence
  cycle, the computation that launches the next iteration (e.g. the
  ``nzIdxA[iA]`` load of a stream-join).
* class **B** — *inner-loop* memory instructions: loads and stores in a
  leaf (innermost) loop. They execute frequently but do not gate the next
  iteration.
* class **C** — everything else.

Class A is more critical than B: a long class-A load blocks *all*
dependent work, while class-B latency is pipelined away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.dfg.graph import DFG, PortRef


@dataclass
class CriticalityReport:
    """Per-class memory-node ids, plus recurrence metadata."""

    class_a: list[int] = field(default_factory=list)
    class_b: list[int] = field(default_factory=list)
    class_c: list[int] = field(default_factory=list)
    #: Non-trivial SCCs containing at least one carry (recurrences).
    recurrences: list[frozenset[int]] = field(default_factory=list)

    def klass(self, nid: int) -> str:
        if nid in self.class_a:
            return "A"
        if nid in self.class_b:
            return "B"
        return "C"

    def counts(self) -> dict[str, int]:
        return {
            "A": len(self.class_a),
            "B": len(self.class_b),
            "C": len(self.class_c),
        }


def dependence_graph(dfg: DFG) -> nx.DiGraph:
    """The DFG's token-dependence digraph (port edges only)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.nodes)
    for node in dfg.nodes.values():
        for inp in node.inputs:
            if isinstance(inp, PortRef):
                graph.add_edge(inp.src, node.nid)
    return graph


def leaf_loops(dfg: DFG) -> set[int]:
    """Loop ids with no nested loops."""
    parents = getattr(dfg, "loops_parent", {})
    loops = set(parents)
    with_children = {p for p in parents.values() if p is not None}
    return loops - with_children


def analyze_criticality(dfg: DFG) -> CriticalityReport:
    """Classify memory nodes and annotate ``node.criticality`` in place."""
    graph = dependence_graph(dfg)
    report = CriticalityReport()

    recurrence_members: set[int] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) < 2:
            continue
        has_carry = any(dfg.nodes[n].op == "carry" for n in component)
        if has_carry:
            report.recurrences.append(frozenset(component))
            recurrence_members |= component

    leaves = leaf_loops(dfg)
    for node in dfg.nodes.values():
        if not node.is_memory():
            continue
        if node.op == "load" and node.nid in recurrence_members:
            node.criticality = "A"
            report.class_a.append(node.nid)
        elif node.attrs.get("loop") in leaves:
            node.criticality = "B"
            report.class_b.append(node.nid)
        else:
            node.criticality = "C"
            report.class_c.append(node.nid)
    report.class_a.sort()
    report.class_b.sort()
    report.class_c.sort()
    return report


def format_report(dfg: DFG, report: CriticalityReport) -> str:
    """Human-readable criticality summary (used by examples and docs)."""
    lines = [f"criticality report for {dfg.name!r}:"]
    for klass, nids in (
        ("A (recurrence-critical loads)", report.class_a),
        ("B (inner-loop memory ops)", report.class_b),
        ("C (other memory ops)", report.class_c),
    ):
        lines.append(f"  class {klass}: {len(nids)}")
        for nid in nids[:16]:
            node = dfg.nodes[nid]
            lines.append(
                f"    node {nid:4d} {node.op:5s} "
                f"{node.attrs.get('array', ''):12s} tag={node.tag!r}"
            )
        if len(nids) > 16:
            lines.append(f"    ... and {len(nids) - 16} more")
    lines.append(f"  recurrences: {len(report.recurrences)}")
    return "\n".join(lines)
