"""Critical-load analysis (paper Sec. 5, "Identifying critical loads").

effcc's heuristics categorize memory instructions as:

* class **A** — *critical* loads that contribute to long initiation
  intervals: loads on a loop-governing recurrence. In the DFG these are
  exactly the loads inside a strongly connected component that also
  contains a carry node — the load's value feeds, through the dependence
  cycle, the computation that launches the next iteration (e.g. the
  ``nzIdxA[iA]`` load of a stream-join).
* class **B** — *inner-loop* memory instructions: loads and stores in a
  leaf (innermost) loop. They execute frequently but do not gate the next
  iteration.
* class **C** — everything else.

Class A is more critical than B: a long class-A load blocks *all*
dependent work, while class-B latency is pipelined away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.dfg.graph import DFG, PortRef


@dataclass
class CriticalityReport:
    """Per-class memory-node ids, plus recurrence metadata."""

    class_a: list[int] = field(default_factory=list)
    class_b: list[int] = field(default_factory=list)
    class_c: list[int] = field(default_factory=list)
    #: Non-trivial SCCs containing at least one carry (recurrences).
    recurrences: list[frozenset[int]] = field(default_factory=list)

    def klass(self, nid: int) -> str:
        if nid in self.class_a:
            return "A"
        if nid in self.class_b:
            return "B"
        return "C"

    def counts(self) -> dict[str, int]:
        return {
            "A": len(self.class_a),
            "B": len(self.class_b),
            "C": len(self.class_c),
        }


def dependence_graph(dfg: DFG) -> nx.DiGraph:
    """The DFG's token-dependence digraph (port edges only)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dfg.nodes)
    for node in dfg.nodes.values():
        for inp in node.inputs:
            if isinstance(inp, PortRef):
                graph.add_edge(inp.src, node.nid)
    return graph


def leaf_loops(dfg: DFG) -> set[int]:
    """Loop ids with no nested loops."""
    parents = getattr(dfg, "loops_parent", {})
    loops = set(parents)
    with_children = {p for p in parents.values() if p is not None}
    return loops - with_children


def analyze_criticality(dfg: DFG) -> CriticalityReport:
    """Classify memory nodes and annotate ``node.criticality`` in place."""
    graph = dependence_graph(dfg)
    report = CriticalityReport()

    recurrence_members: set[int] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) < 2:
            continue
        has_carry = any(dfg.nodes[n].op == "carry" for n in component)
        if has_carry:
            report.recurrences.append(frozenset(component))
            recurrence_members |= component

    leaves = leaf_loops(dfg)
    for node in dfg.nodes.values():
        if not node.is_memory():
            continue
        if node.op == "load" and node.nid in recurrence_members:
            node.criticality = "A"
            report.class_a.append(node.nid)
        elif node.attrs.get("loop") in leaves:
            node.criticality = "B"
            report.class_b.append(node.nid)
        else:
            node.criticality = "C"
            report.class_c.append(node.nid)
    report.class_a.sort()
    report.class_b.sort()
    report.class_c.sort()
    return report


@dataclass
class ValidationRow:
    """Static-vs-dynamic agreement for one workload and one class set.

    The static classifier (class A, or A∪B) predicts which memory nodes
    are critical; the measured ground truth is the dynamic criticality
    from :mod:`repro.obs.critpath` (fraction of the critical path spent
    in each node's memory round-trips). Standard retrieval framing:
    *precision* = of the statically flagged nodes, how many were
    dynamically critical; *recall* = of the dynamically critical nodes,
    how many the static heuristic flagged.
    """

    workload: str
    classes: str
    predicted: int
    actual: int
    true_positive: int

    @property
    def precision(self) -> float | None:
        if not self.predicted:
            return None
        return self.true_positive / self.predicted

    @property
    def recall(self) -> float | None:
        if not self.actual:
            return None
        return self.true_positive / self.actual


def validate_against_dynamic(
    workload: str,
    report: CriticalityReport,
    dynamic: dict[int, float],
    threshold: float = 0.01,
) -> list[ValidationRow]:
    """Score the static class-A (and A∪B) sets against measured
    criticality.

    ``dynamic`` maps memory nid -> fraction of the critical path through
    that node (see
    :meth:`repro.obs.critpath.CriticalPathRecorder.dynamic_criticality`);
    a node is *dynamically critical* when its fraction reaches
    ``threshold``. Returns one row for class ``A`` and one for ``A+B``.
    """
    actual = {nid for nid, frac in dynamic.items() if frac >= threshold}
    rows = []
    for classes, predicted in (
        ("A", set(report.class_a)),
        ("A+B", set(report.class_a) | set(report.class_b)),
    ):
        rows.append(
            ValidationRow(
                workload=workload,
                classes=classes,
                predicted=len(predicted),
                actual=len(actual),
                true_positive=len(predicted & actual),
            )
        )
    return rows


def format_validation_table(
    rows: list[ValidationRow], threshold: float
) -> str:
    """Aligned static-vs-dynamic table with micro-averaged totals."""

    def fmt(value: float | None) -> str:
        return "-" if value is None else f"{value:.2f}"

    lines = [
        "static classification vs measured dynamic criticality "
        f"(critical = >= {threshold:.0%} of the critical path):",
        "  workload     set  pred  crit    tp  precision  recall",
    ]
    totals: dict[str, list[int]] = {}
    for row in rows:
        lines.append(
            f"  {row.workload:12s} {row.classes:>3s} {row.predicted:5d} "
            f"{row.actual:5d} {row.true_positive:5d} "
            f"{fmt(row.precision):>10s} {fmt(row.recall):>7s}"
        )
        agg = totals.setdefault(row.classes, [0, 0, 0])
        agg[0] += row.predicted
        agg[1] += row.actual
        agg[2] += row.true_positive
    for classes in sorted(totals):
        predicted, actual, tp = totals[classes]
        micro = ValidationRow("all", classes, predicted, actual, tp)
        lines.append(
            f"  {'(micro avg)':12s} {classes:>3s} {predicted:5d} "
            f"{actual:5d} {tp:5d} {fmt(micro.precision):>10s} "
            f"{fmt(micro.recall):>7s}"
        )
    return "\n".join(lines)


def format_report(dfg: DFG, report: CriticalityReport) -> str:
    """Human-readable criticality summary (used by examples and docs)."""
    lines = [f"criticality report for {dfg.name!r}:"]
    for klass, nids in (
        ("A (recurrence-critical loads)", report.class_a),
        ("B (inner-loop memory ops)", report.class_b),
        ("C (other memory ops)", report.class_c),
    ):
        lines.append(f"  class {klass}: {len(nids)}")
        for nid in nids[:16]:
            node = dfg.nodes[nid]
            lines.append(
                f"    node {nid:4d} {node.op:5s} "
                f"{node.attrs.get('array', ''):12s} tag={node.tag!r}"
            )
        if len(nids) > 16:
            lines.append(f"    ... and {len(nids) - 16} more")
    lines.append(f"  recurrences: {len(report.recurrences)}")
    return "\n".join(lines)
