"""Profile-guided criticality refinement.

The paper's Sec. 5 notes that "prior work on static or profile-guided
analysis also categorizes loads similarly". The static heuristics in
:mod:`repro.core.criticality` occasionally misjudge execution frequency:
an inner-loop load behind a rarely taken branch fires far less often than
its class-B label suggests, and a class-C load in a hot outer loop may
dominate traffic. This pass runs the kernel once through the untimed DFG
interpreter on profiling inputs and reclassifies class B/C memory nodes by
measured firing frequency. Class A is structural (recurrence membership)
and is never changed by profiling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criticality import CriticalityReport, analyze_criticality
from repro.dfg.graph import DFG
from repro.dfg.interp import run_dfg

#: Memory nodes firing at least this fraction of the hottest memory
#: node's count are classified as inner-loop (class B).
HOT_FRACTION = 0.5


@dataclass
class ProfileReport:
    """Outcome of profile-guided refinement."""

    report: CriticalityReport
    node_counts: dict[int, int]
    promoted: list[int]  # C -> B
    demoted: list[int]  # B -> C


def profile_dfg(
    dfg: DFG,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
) -> dict[int, int]:
    """Per-node firing counts from one untimed execution."""
    return run_dfg(dfg, params, arrays).node_firings


def analyze_with_profile(
    dfg: DFG,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    hot_fraction: float = HOT_FRACTION,
) -> ProfileReport:
    """Static criticality analysis refined by a profiling run.

    Returns the refined report (also annotated onto the nodes in place).
    """
    static = analyze_criticality(dfg)
    counts = profile_dfg(dfg, params, arrays)
    mem_counts = {
        n.nid: counts.get(n.nid, 0) for n in dfg.memory_nodes()
    }
    hottest = max(mem_counts.values(), default=0)
    threshold = hot_fraction * hottest
    refined = CriticalityReport(
        class_a=list(static.class_a), recurrences=list(static.recurrences)
    )
    promoted: list[int] = []
    demoted: list[int] = []
    for nid, count in sorted(mem_counts.items()):
        if nid in static.class_a:
            continue
        was_b = nid in static.class_b
        is_hot = hottest > 0 and count >= threshold
        if is_hot:
            refined.class_b.append(nid)
            dfg.nodes[nid].criticality = "B"
            if not was_b:
                promoted.append(nid)
        else:
            refined.class_c.append(nid)
            dfg.nodes[nid].criticality = "C"
            if was_b:
                demoted.append(nid)
    return ProfileReport(refined, counts, promoted, demoted)
