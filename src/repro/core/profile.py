"""Profile-guided criticality refinement.

The paper's Sec. 5 notes that "prior work on static or profile-guided
analysis also categorizes loads similarly". The static heuristics in
:mod:`repro.core.criticality` occasionally misjudge execution frequency:
an inner-loop load behind a rarely taken branch fires far less often than
its class-B label suggests, and a class-C load in a hot outer loop may
dominate traffic. This pass runs the kernel once through the untimed DFG
interpreter on profiling inputs and reclassifies class B/C memory nodes by
measured firing frequency. Class A is structural (recurrence membership)
and is never changed by profiling.

The pass is wired into compilation as ``compile_once(..., profile=...)``
(surfaced as ``--profile-guided`` on ``repro run`` / ``repro sweep``) and
is the seed of the full feedback-directed loop in :mod:`repro.exp.fdo`.

Two sharp edges, both regression-tested:

* **No caller mutation by default.** Refinement annotates
  ``node.criticality`` only when ``in_place=True`` (the compile flow,
  which owns a freshly lowered DFG). Refining a caller's DFG in place
  used to leave compile-cache entries keyed on the *unrefined* graph
  looking valid while the graph underneath them had changed class labels.
* **Degenerate profiles keep static classes.** When every memory node
  fires zero times on the profiling input (an untaken guard, a
  zero-trip loop), there is no frequency signal; the old behavior
  silently demoted every class-B node to C. Now the static classes are
  kept and :attr:`ProfileReport.degenerate`/``note`` say why.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.criticality import CriticalityReport, analyze_criticality
from repro.dfg.graph import DFG
from repro.dfg.interp import run_dfg

#: Memory nodes firing at least this fraction of the hottest memory
#: node's count are classified as inner-loop (class B).
HOT_FRACTION = 0.5


@dataclass
class ProfileReport:
    """Outcome of profile-guided refinement."""

    report: CriticalityReport
    node_counts: dict[int, int]
    promoted: list[int]  # C -> B
    demoted: list[int]  # B -> C
    #: True when the profiling run produced no memory-node firings at
    #: all (no frequency signal): static classes are kept unchanged.
    degenerate: bool = False
    #: Human-readable caveat for degenerate (or otherwise noteworthy)
    #: profiles; surfaced in manifests and the CLI.
    note: str | None = None

    def to_dict(self) -> dict:
        """Deterministic JSON-safe view (manifests, ``--stats-json``)."""
        return {
            "promoted": list(self.promoted),
            "demoted": list(self.demoted),
            "degenerate": self.degenerate,
            "note": self.note,
            "counts": self.report.counts(),
        }


def profile_dfg(
    dfg: DFG,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
) -> dict[int, int]:
    """Per-node firing counts from one untimed execution."""
    return run_dfg(dfg, params, arrays).node_firings


def apply_classes(dfg: DFG, report: CriticalityReport) -> None:
    """Annotate ``node.criticality`` from ``report`` onto ``dfg``."""
    for node in dfg.memory_nodes():
        node.criticality = report.klass(node.nid)


def analyze_with_profile(
    dfg: DFG,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    hot_fraction: float = HOT_FRACTION,
    in_place: bool = False,
) -> ProfileReport:
    """Static criticality analysis refined by a profiling run.

    Returns the refined report. The caller's DFG keeps its *static*
    class annotations unless ``in_place=True`` (then the refined classes
    are annotated onto the nodes, as the compile flow wants for its own
    freshly lowered graph). Callers holding a DFG that other code — in
    particular the compile cache — already keyed on must leave
    ``in_place`` off and use :func:`apply_classes` on a copy they own.
    """
    static = analyze_criticality(dfg)
    counts = profile_dfg(dfg, params, arrays)
    mem_counts = {
        n.nid: counts.get(n.nid, 0) for n in dfg.memory_nodes()
    }
    hottest = max(mem_counts.values(), default=0)
    if hottest == 0:
        # No memory node fired on the profiling input: there is no
        # frequency signal to refine with. Keep the static classes
        # (the old behavior demoted every class-B node to C here).
        return ProfileReport(
            report=static,
            node_counts=counts,
            promoted=[],
            demoted=[],
            degenerate=True,
            note=(
                "degenerate profile: no memory node fired on the "
                "profiling input; static classes kept"
            ),
        )
    threshold = hot_fraction * hottest
    refined = CriticalityReport(
        class_a=list(static.class_a), recurrences=list(static.recurrences)
    )
    promoted: list[int] = []
    demoted: list[int] = []
    for nid, count in sorted(mem_counts.items()):
        if nid in static.class_a:
            continue
        was_b = nid in static.class_b
        is_hot = count >= threshold
        if is_hot:
            refined.class_b.append(nid)
            if not was_b:
                promoted.append(nid)
        else:
            refined.class_c.append(nid)
            if was_b:
                demoted.append(nid)
    if in_place:
        apply_classes(dfg, refined)
    return ProfileReport(refined, counts, promoted, demoted)
