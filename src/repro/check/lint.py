"""Static lint pass over lowered dataflow graphs.

:func:`repro.dfg.graph.DFG.validate` rejects graphs that are *malformed*
(wrong arity, undeclared arrays, immediates on cadence-carrying ports).
This pass catches the next class up: graphs that are well-formed but
*wrong by construction* — exactly the bug family PR 3 fixed by hand when
loop-carry inits under an untaken ``If`` arm leaked ungated tokens. The
rules here are derived from the lowering's token-cadence discipline
(see ``dfg/lower.py`` and INTERNALS Sec. 1):

``dangling-port``
    an edge references a node id that does not exist (includes the
    lowering's ``PortRef(-1)`` back-edge placeholder, which must never
    survive to a finished graph);
``unreachable``
    a node with no forward path from the ``source`` — none of its edge
    inputs can ever carry a token, so it can never fire (a firing-rule
    wedge waiting to happen);
``dead``
    a node with no path *to* any store in a graph that has stores —
    :func:`repro.dfg.lower.eliminate_dead` should have removed it, so
    its survival indicates the lowering lost track of liveness;
``carry-init-imm``
    a carry whose ``init`` input is an immediate: an always-available
    init lets the loop re-launch itself (the lowering materializes
    constants through region-triggered injects precisely to avoid this);
``carry-placeholder``
    a carry whose ``back``/``dec`` inputs were never patched after the
    loop body was lowered;
``steer-cadence``
    a steer whose decider or steered value is produced in a loop region
    *incomparable* with the steer's own (neither encloses the other in
    the loop-nesting tree). Token streams only cross between comparable
    regions — inward through carries/invariants/gates, outward through
    exit steers — so an edge between sibling loops means the two ends
    fire under unrelated cadences and the steer's input FIFOs drift:
    the classic token leak.

Every rule is *sound for the lowering's output*: the 13 Table-1
workloads and the fuzz corpus lint clean, and the tests build broken
graphs for each rule. ``lower_kernel(..., strict=True)`` runs this pass
automatically and raises :class:`repro.errors.DFGError` on any finding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg.graph import DFG, PortRef
from repro.errors import DFGError


@dataclass(frozen=True)
class LintIssue:
    """One lint finding: a rule violation at a specific node."""

    rule: str
    nid: int
    message: str

    def describe(self) -> str:
        return f"[{self.rule}] node {self.nid}: {self.message}"


def _loop_ancestors(dfg: DFG, loop: int | None) -> set[int | None]:
    """``loop`` and every enclosing loop id (``None`` = top level)."""
    parents = getattr(dfg, "loops_parent", {})
    chain: set[int | None] = {loop}
    seen = 0
    while loop is not None and seen < len(parents) + 1:
        loop = parents.get(loop)
        chain.add(loop)
        seen += 1
    return chain


def lint_dfg(dfg: DFG) -> list[LintIssue]:
    """Run every lint rule over ``dfg``; returns all findings (no raise)."""
    issues: list[LintIssue] = []
    issues += _lint_dangling(dfg)
    # Downstream rules assume edges resolve; a graph with dangling ports
    # is reported on that alone.
    if issues:
        return issues
    issues += _lint_unreachable(dfg)
    issues += _lint_dead(dfg)
    issues += _lint_carries(dfg)
    issues += _lint_steer_cadence(dfg)
    return issues


def lint_strict(dfg: DFG) -> None:
    """Raise :class:`DFGError` listing every finding (no-op when clean)."""
    issues = lint_dfg(dfg)
    if issues:
        listing = "\n".join(f"  {issue.describe()}" for issue in issues)
        raise DFGError(
            f"DFG lint: {len(issues)} issue(s) in {dfg.name!r}:\n{listing}"
        )


# -- rules ------------------------------------------------------------------


def _lint_dangling(dfg: DFG) -> list[LintIssue]:
    issues = []
    for node in dfg.nodes.values():
        for index, inp in enumerate(node.inputs):
            if isinstance(inp, PortRef) and inp.src not in dfg.nodes:
                detail = (
                    "unpatched back-edge placeholder"
                    if inp.src == -1
                    else f"edge from nonexistent node {inp.src}"
                )
                issues.append(
                    LintIssue(
                        "dangling-port",
                        node.nid,
                        f"({node.op} {node.tag!r}) port "
                        f"{node.port_name(index)}: {detail}",
                    )
                )
    return issues


def _lint_unreachable(dfg: DFG) -> list[LintIssue]:
    sources = [n.nid for n in dfg.nodes.values() if n.op == "source"]
    consumers = dfg.consumers()
    reached: set[int] = set()
    stack = list(sources)
    while stack:
        nid = stack.pop()
        if nid in reached:
            continue
        reached.add(nid)
        for consumer, _index in consumers[nid]:
            if consumer not in reached:
                stack.append(consumer)
    issues = []
    for node in dfg.nodes.values():
        if node.nid not in reached:
            issues.append(
                LintIssue(
                    "unreachable",
                    node.nid,
                    f"({node.op} {node.tag!r}) has no forward path from "
                    "the source; it can never fire",
                )
            )
    return issues


def _lint_dead(dfg: DFG) -> list[LintIssue]:
    stores = [n.nid for n in dfg.nodes.values() if n.op == "store"]
    if not stores:
        return []
    live: set[int] = set()
    stack = list(stores)
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for inp in dfg.nodes[nid].inputs:
            if isinstance(inp, PortRef) and inp.src not in live:
                stack.append(inp.src)
    issues = []
    for node in dfg.nodes.values():
        if node.nid not in live:
            issues.append(
                LintIssue(
                    "dead",
                    node.nid,
                    f"({node.op} {node.tag!r}) has no path to any store; "
                    "eliminate_dead should have removed it",
                )
            )
    return issues


def _lint_carries(dfg: DFG) -> list[LintIssue]:
    issues = []
    for node in dfg.nodes.values():
        if node.op != "carry":
            continue
        init, back, dec = node.inputs
        if not isinstance(init, PortRef):
            issues.append(
                LintIssue(
                    "carry-init-imm",
                    node.nid,
                    f"({node.tag!r}) init is an immediate; an "
                    "always-available init re-launches the loop "
                    "(materialize constants through a region-triggered "
                    "inject instead)",
                )
            )
        for name, inp in (("back", back), ("dec", dec)):
            if isinstance(inp, PortRef) and inp.src == -1:
                issues.append(
                    LintIssue(
                        "carry-placeholder",
                        node.nid,
                        f"({node.tag!r}) {name} port still holds the "
                        "lowering's back-edge placeholder",
                    )
                )
    return issues


def _lint_steer_cadence(dfg: DFG) -> list[LintIssue]:
    issues = []
    for node in dfg.nodes.values():
        if node.op != "steer":
            continue
        loop = node.attrs.get("loop")
        ancestors = _loop_ancestors(dfg, loop)
        for port, inp in (("dec", node.inputs[0]), ("val", node.inputs[1])):
            if not isinstance(inp, PortRef):
                continue
            src_loop = dfg.nodes[inp.src].attrs.get("loop")
            comparable = (
                src_loop in ancestors
                or loop in _loop_ancestors(dfg, src_loop)
            )
            if not comparable:
                issues.append(
                    LintIssue(
                        "steer-cadence",
                        node.nid,
                        f"({node.tag!r}) {port} input produced in loop "
                        f"region {src_loop!r}, incomparable with the "
                        f"steer's region {loop!r}: sibling regions fire "
                        "under unrelated cadences",
                    )
                )
    return issues
