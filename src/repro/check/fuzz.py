"""Seeded random-kernel fuzzer with a greedy shrinker and corpus dir.

The generator is a plain :class:`random.Random` walk over the kernel
IR — deliberately *not* hypothesis, so ``repro check --fuzz N --seed S``
reproduces the exact same kernel sequence on any machine with nothing
but the seed. It emits the NUPEA-critical patterns: nested counted
loops, data-dependent bounded ``while`` loops, two-armed ``If``s,
loop-carried scalar accumulators, and indirect loads (``A[X[i] % N]`` —
the pointer-chasing access shape the paper's critical-load analysis
targets). Indices are clamped into bounds and loops carry explicit
counters, so every generated kernel terminates and the IR reference
interpreter (ground truth) always succeeds.

Each kernel is pushed through the full three-way differential oracle
(:func:`repro.check.oracle.check_kernel`) with runtime invariants and
DFG lint armed. A failing report is shrunk by greedy structural
reduction — drop statements, inline ``If`` arms and loop bodies,
shorten loop bounds, simplify expressions — re-running the oracle after
each candidate and keeping any candidate that still fails, until a
fixpoint (or the attempt budget). The minimal reproducer is written to
the corpus directory as JSON (AST via :mod:`repro.ir.serialize`, plus
the inputs, the report, and a pretty-printed listing) so a regression
test can replay it forever.

Kernels that fail *PnR* (unroutable/unplaceable at the fuzz fabric
size) are counted as skips, not findings: routability is a capacity
property, not a conformance one.
"""

from __future__ import annotations

import dataclasses
import json
import random
import time
from pathlib import Path

from repro.arch.params import ArchParams
from repro.errors import PnRError, ReproError
from repro.ir.ast import (
    ArraySpec,
    Assign,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    Store,
    Var,
    While,
)
from repro.ir.interp import run_kernel
from repro.ir.serialize import kernel_from_dict, kernel_to_dict
from repro.ir.validate import validate_kernel

#: Fuzz arrays are this many words; every index is clamped into range.
ARRAY_SIZE = 8

#: Launch parameters every fuzz kernel receives.
FUZZ_PARAMS = {"n": 3}

#: Operators the generator draws from. Division and shifts are excluded
#: (zero divisors / huge shifts would make the *generator* buggy, not
#: the layers under test); ``&``/``|`` operands are guarded through
#: comparisons so bit-ops stay on small non-negative values.
SAFE_BINOPS = ("+", "-", "*", "min", "max", "<", "<=", "==", "&", "|")

#: Iteration budget when pre-checking shrink candidates (a candidate
#: that lost its loop increment must fail fast, not spin to 50M).
SHRINK_ITER_BUDGET = 100_000

#: Oracle runs the shrinker may spend per failure.
SHRINK_BUDGET = 300


def fuzz_arrays(rng: random.Random) -> dict[str, list]:
    """Deterministic initial array contents for one fuzz case."""
    return {
        "A": [rng.randrange(-4, 8) for _ in range(ARRAY_SIZE)],
        "X": [rng.randrange(0, ARRAY_SIZE) for _ in range(ARRAY_SIZE)],
    }


def _clamp(expr) -> BinOp:
    """``((expr % N) + N) % N`` — always a valid index."""
    wrapped = BinOp("%", expr, Const(ARRAY_SIZE))
    return BinOp(
        "%", BinOp("+", wrapped, Const(ARRAY_SIZE)), Const(ARRAY_SIZE)
    )


class KernelGen:
    """Seeded random kernel generator (see module doc)."""

    def __init__(self, rng: random.Random, max_depth: int = 2):
        self.rng = rng
        self.max_depth = max_depth
        self._counter = 0

    def expr(self, variables: list[str], depth: int = 2):
        rng = self.rng
        if depth == 0 or not variables or rng.random() < 0.3:
            if variables and rng.random() < 0.5:
                return Var(rng.choice(variables))
            return Const(rng.randrange(-4, 5))
        op = rng.choice(SAFE_BINOPS)
        lhs = self.expr(variables, depth - 1)
        rhs = self.expr(variables, depth - 1)
        if op in ("&", "|"):
            lhs = BinOp("<", lhs, Const(2))
            rhs = BinOp("<", rhs, Const(2))
        return BinOp(op, lhs, rhs)

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def stmts(self, variables: set[str], depth: int) -> list:
        out = []
        for _ in range(self.rng.randrange(1, 4)):
            out.extend(self.stmt(variables, depth))
        return out

    def stmt(self, variables: set[str], depth: int) -> list:
        """One statement (as a list — some patterns expand to several)."""
        rng = self.rng
        kinds = ["assign", "load", "store", "indirect"]
        if depth > 0:
            kinds += ["if", "for", "while", "accum"]
        kind = rng.choice(kinds)
        scalars = sorted(variables)
        if kind == "assign":
            name = rng.choice(["v0", "v1", "v2", "v3"])
            stmt = Assign(name, self.expr(scalars))
            variables.add(name)
            return [stmt]
        if kind == "load":
            name = rng.choice(["v0", "v1", "v2", "v3"])
            array = rng.choice(["A", "X"])
            stmt = Load(name, array, _clamp(self.expr(scalars)))
            variables.add(name)
            return [stmt]
        if kind == "indirect":
            # The NUPEA-critical shape: a load whose index is itself
            # loaded (A[X[e] % N]) — a two-deep critical-load chain.
            ptr = self._fresh("p")
            name = rng.choice(["v0", "v1", "v2", "v3"])
            stmts = [
                Load(ptr, "X", _clamp(self.expr(scalars))),
                Load(name, "A", _clamp(Var(ptr))),
            ]
            variables.add(name)
            return stmts
        if kind == "store":
            return [
                Store("A", _clamp(self.expr(scalars)), self.expr(scalars))
            ]
        if kind == "if":
            cond = self.expr(scalars)
            then_vars = set(variables)
            then_body = self.stmts(then_vars, depth - 1)
            else_vars = set(variables)
            else_body = (
                self.stmts(else_vars, depth - 1)
                if rng.random() < 0.7
                else []
            )
            variables |= then_vars & else_vars
            return [If(cond, then_body, else_body)]
        if kind == "for":
            loop_var = self._fresh("i")
            body_vars = set(variables) | {loop_var}
            body = self.stmts(body_vars, depth - 1)
            return [
                For(
                    loop_var,
                    Const(0),
                    Const(rng.randrange(0, 5)),
                    Const(1),
                    body,
                )
            ]
        if kind == "accum":
            # Loop-carried scalar: init before the loop, update inside,
            # observable through a store after.
            acc = self._fresh("a")
            loop_var = self._fresh("i")
            variables.add(acc)
            body_vars = set(variables) | {loop_var}
            update = BinOp(
                rng.choice(("+", "-", "min", "max")),
                Var(acc),
                self.expr(sorted(body_vars), depth=1),
            )
            body = self.stmts(body_vars, depth - 1) + [Assign(acc, update)]
            return [
                Assign(acc, self.expr(scalars, depth=1)),
                For(
                    loop_var,
                    Const(0),
                    Const(rng.randrange(1, 5)),
                    Const(1),
                    body,
                ),
                Store("A", _clamp(self.expr(scalars)), Var(acc)),
            ]
        # while: a bounded counter guarantees termination; the extra
        # data-dependent term exercises irregular iteration counts.
        guard = self._fresh("w")
        variables.add(guard)
        body_vars = set(variables)
        body = self.stmts(body_vars, depth - 1)
        bound = self.rng.randrange(0, 5)
        body = body + [Assign(guard, BinOp("+", Var(guard), Const(1)))]
        return [
            Assign(guard, Const(0)),
            While(BinOp("<", Var(guard), Const(bound)), body),
        ]

    def kernel(self, index: int) -> Kernel:
        variables: set[str] = {"n"}
        body = self.stmts(variables, self.max_depth)
        # Guarantee at least one observable effect.
        body.append(
            Store("A", Const(0), self.expr(sorted(variables), depth=1))
        )
        kernel = Kernel(
            f"fuzz{index}",
            ["n"],
            [ArraySpec("A", ARRAY_SIZE), ArraySpec("X", ARRAY_SIZE)],
            body,
        )
        validate_kernel(kernel)
        return kernel


# -- the fuzz loop ----------------------------------------------------------


@dataclasses.dataclass
class FuzzFailure:
    """One divergence found by the fuzzer."""

    index: int
    seed: int
    kernel: Kernel
    shrunk: Kernel
    report: object  # ConformanceReport
    path: Path | None = None


@dataclasses.dataclass
class FuzzResult:
    ran: int = 0
    skipped: int = 0
    failures: list[FuzzFailure] = dataclasses.field(default_factory=list)
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures


def _fuzz_arch(arch: ArchParams | None) -> ArchParams:
    """Fuzz-friendly parameters: fail fast on wedges and runaways."""
    arch = arch or ArchParams()
    return dataclasses.replace(
        arch,
        sim=dataclasses.replace(
            arch.sim,
            check=True,
            deadlock_cycles=min(arch.sim.deadlock_cycles, 20_000),
            max_cycles=min(arch.sim.max_cycles, 2_000_000),
        ),
    )


def _oracle(kernel: Kernel, arrays: dict, arch: ArchParams, seed: int):
    """Run the three-way oracle; None = PnR skip (capacity, not a bug)."""
    from repro.check.oracle import check_kernel

    try:
        return check_kernel(
            kernel,
            FUZZ_PARAMS,
            arrays,
            arch=arch,
            orders=("fifo", "lifo", "random"),
            seed=seed,
            anneal_moves=400,
        )
    except PnRError:
        return None


def shrink_kernel(
    kernel: Kernel,
    still_fails,
    budget: int = SHRINK_BUDGET,
) -> Kernel:
    """Greedy structural shrink: keep any reduction that still fails.

    ``still_fails(kernel) -> bool`` runs the oracle; candidates must be
    valid, terminating kernels (checked here against the IR interpreter
    with a small iteration budget) before the oracle is spent on them.
    Restarts the candidate scan after every accepted reduction until a
    full pass accepts nothing or ``budget`` oracle runs are spent.
    """
    spent = 0
    current = kernel_to_dict(kernel)

    def viable(data: dict) -> Kernel | None:
        try:
            candidate = kernel_from_dict(data)
            validate_kernel(candidate)
            run_kernel(
                candidate,
                FUZZ_PARAMS,
                None,
                max_iterations=SHRINK_ITER_BUDGET,
            )
        except ReproError:
            return None
        return candidate

    progress = True
    while progress and spent < budget:
        progress = False
        for candidate_data in _reductions(current):
            if spent >= budget:
                break
            candidate = viable(candidate_data)
            if candidate is None:
                continue
            spent += 1
            if still_fails(candidate):
                current = candidate_data
                progress = True
                break
    return kernel_from_dict(current)


def _reductions(data: dict):
    """Yield shrink candidates (deep-copied dicts), smallest-step first."""

    def copy(d):
        return json.loads(json.dumps(d))

    # Pass 1: drop whole statements (later statements first: the forced
    # trailing store is the likeliest to be droppable without losing
    # the failure, and dropping from the tail keeps prefixes intact).
    for path, block in _blocks(data):
        for i in reversed(range(len(block))):
            candidate = copy(data)
            _block_at(candidate, path)[i : i + 1] = []
            yield candidate
    # Pass 2: inline structured statements.
    for path, block in _blocks(data):
        for i, stmt in enumerate(block):
            if stmt["s"] == "if":
                for arm in ("then", "else"):
                    candidate = copy(data)
                    _block_at(candidate, path)[i : i + 1] = copy(stmt[arm])
                    yield candidate
            elif stmt["s"] in ("for", "parfor", "while"):
                candidate = copy(data)
                _block_at(candidate, path)[i : i + 1] = copy(stmt["body"])
                yield candidate
    # Pass 3: shorten counted-loop trip counts.
    for path, block in _blocks(data):
        for i, stmt in enumerate(block):
            if stmt["s"] in ("for", "parfor") and stmt["hi"]["e"] == "const":
                hi = stmt["hi"]["value"]
                if isinstance(hi, int) and hi > 0:
                    candidate = copy(data)
                    _block_at(candidate, path)[i]["hi"]["value"] = hi - 1
                    yield candidate
    # Pass 4: simplify expressions (binop -> operand, anything -> 0/1).
    for expr_path in _expr_paths(data):
        expr = _expr_at(data, expr_path)
        replacements = []
        if expr["e"] == "binop":
            replacements += [expr["lhs"], expr["rhs"]]
        if expr["e"] != "const":
            replacements += [
                {"e": "const", "value": 0},
                {"e": "const", "value": 1},
            ]
        for replacement in replacements:
            candidate = copy(data)
            _set_expr(candidate, expr_path, copy(replacement))
            yield candidate


# -- dict-AST traversal helpers --------------------------------------------

_STMT_BLOCK_KEYS = {
    "if": ("then", "else"),
    "while": ("body",),
    "for": ("body",),
    "parfor": ("body",),
}
_STMT_EXPR_KEYS = {
    "assign": ("expr",),
    "load": ("index",),
    "store": ("index", "value"),
    "if": ("cond",),
    "while": ("cond",),
    "for": ("lo", "hi", "step"),
    "parfor": ("lo", "hi", "step"),
}


def _blocks(data: dict):
    """Yield (path, block) for every statement list, outermost first.

    A path is a tuple of steps navigating from the kernel dict:
    ``("body",)`` then per-statement ``(index, key)`` extensions.
    """

    def walk(block, path):
        yield path, block
        for i, stmt in enumerate(block):
            for key in _STMT_BLOCK_KEYS.get(stmt["s"], ()):
                yield from walk(stmt[key], path + ((i, key),))
            if stmt["s"] == "par":
                for b, sub in enumerate(stmt["blocks"]):
                    yield from walk(sub, path + ((i, ("blocks", b)),))

    yield from walk(data["body"], ())


def _block_at(data: dict, path) -> list:
    block = data["body"]
    for index, key in path:
        stmt = block[index]
        if isinstance(key, tuple):
            block = stmt[key[0]][key[1]]
        else:
            block = stmt[key]
    return block


def _expr_paths(data: dict):
    """Paths to every expression slot: (block path, stmt index, key)."""
    for path, block in _blocks(data):
        for i, stmt in enumerate(block):
            for key in _STMT_EXPR_KEYS.get(stmt["s"], ()):
                yield (path, i, key)


def _expr_at(data: dict, expr_path) -> dict:
    path, i, key = expr_path
    return _block_at(data, path)[i][key]


def _set_expr(data: dict, expr_path, value: dict) -> None:
    path, i, key = expr_path
    _block_at(data, path)[i][key] = value


# -- corpus ----------------------------------------------------------------


def write_reproducer(
    corpus_dir: Path, failure: FuzzFailure, arrays: dict
) -> Path:
    """Write one shrunken reproducer as reviewable JSON."""
    from repro.ir.pretty import format_kernel

    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path = corpus_dir / f"fail-s{failure.seed}-k{failure.index}.json"
    payload = {
        "schema": 1,
        "seed": failure.seed,
        "index": failure.index,
        "params": FUZZ_PARAMS,
        "arrays": arrays,
        "kernel": kernel_to_dict(failure.shrunk),
        "original_kernel": kernel_to_dict(failure.kernel),
        "report": (
            failure.report.to_dict() if failure.report is not None else None
        ),
        "pretty": format_kernel(failure.shrunk).splitlines(),
    }
    path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
    return path


def load_reproducer(path) -> tuple[Kernel, dict, dict]:
    """Load a corpus entry back: (kernel, params, arrays)."""
    payload = json.loads(Path(path).read_text())
    return (
        kernel_from_dict(payload["kernel"]),
        payload["params"],
        payload["arrays"],
    )


def fuzz(
    count: int,
    seed: int = 0,
    corpus_dir=None,
    arch: ArchParams | None = None,
    shrink: bool = True,
    progress=None,
) -> FuzzResult:
    """Fuzz ``count`` kernels from ``seed``; shrink and record failures.

    Deterministic: the same ``(count, seed)`` generates the same kernel
    and input sequence everywhere. ``progress`` is an optional callable
    ``(index, status, detail)`` for CLI reporting.
    """
    start = time.perf_counter()
    arch = _fuzz_arch(arch)
    result = FuzzResult()
    for index in range(count):
        # One independent stream per case: a failure is reproducible
        # from (seed, index) alone, without replaying the whole run.
        rng = random.Random((seed << 20) ^ index)
        kernel = KernelGen(rng).kernel(index)
        arrays = fuzz_arrays(rng)
        report = _oracle(kernel, arrays, arch, seed)
        if report is None:
            result.skipped += 1
            if progress is not None:
                progress(index, "skip", "PnR capacity")
            continue
        result.ran += 1
        if report.ok:
            if progress is not None:
                progress(index, "ok", f"{report.cycles} cycles")
            continue
        if progress is not None:
            progress(index, "FAIL", report.divergences[0].describe())
        shrunk = kernel
        final_report = report
        if shrink:
            def still_fails(candidate: Kernel) -> bool:
                nonlocal final_report
                candidate_report = _oracle(candidate, arrays, arch, seed)
                if candidate_report is not None and not candidate_report.ok:
                    final_report = candidate_report
                    return True
                return False

            shrunk = shrink_kernel(kernel, still_fails)
        failure = FuzzFailure(
            index=index,
            seed=seed,
            kernel=kernel,
            shrunk=shrunk,
            report=final_report,
        )
        if corpus_dir is not None:
            failure.path = write_reproducer(
                Path(corpus_dir), failure, arrays
            )
        result.failures.append(failure)
    result.wall_time = time.perf_counter() - start
    return result
