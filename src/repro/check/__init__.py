"""Cross-layer conformance subsystem (``repro.check``).

The repository's central claim is three-level equivalence: the IR
interpreter, the untimed DFG token interpreter and the cycle-level
simulator must compute identical answers for every kernel. Until this
package that equivalence was only spot-checked per workload; ``repro.check``
makes it a first-class, always-runnable guarantee with four pillars:

* :mod:`repro.check.oracle` — a **three-way differential oracle**
  (:func:`check_kernel` / :func:`check_workload`) that runs one kernel
  through all three layers and diffs final array states plus op/firing
  counts into a structured :class:`ConformanceReport`;
* :mod:`repro.check.invariants` — **runtime invariant checkers** wired
  into the simulator exactly like the observability bus (None-gated,
  zero overhead when off, bit-identical results either way): token
  conservation, FIFO capacity, memory-ordering monotonicity and
  stats-ledger identities;
* :mod:`repro.check.lint` — a **DFG static lint pass** (dangling ports,
  unreachable nodes, steer-cadence mismatches, carry-init gating) run
  automatically after lowering under ``lower_kernel(..., strict=True)``;
* :mod:`repro.check.fuzz` — a **seeded random kernel generator** and
  shrinker behind ``repro check --fuzz N --seed S``, writing minimal
  reproducers to a corpus directory.
"""

from __future__ import annotations

from repro.check.fuzz import FuzzFailure, FuzzResult, fuzz
from repro.check.invariants import InvariantChecker, InvariantViolation
from repro.check.lint import LintIssue, lint_dfg, lint_strict
from repro.check.oracle import (
    ConformanceReport,
    Divergence,
    check_kernel,
    check_workload,
    run_conformance,
)

__all__ = [
    "ConformanceReport",
    "Divergence",
    "FuzzFailure",
    "FuzzResult",
    "InvariantChecker",
    "InvariantViolation",
    "LintIssue",
    "check_kernel",
    "check_workload",
    "fuzz",
    "lint_dfg",
    "lint_strict",
    "run_conformance",
]
