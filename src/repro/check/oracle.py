"""Three-way differential oracle: IR interp vs DFG interp vs timed sim.

The repository's central claim is that its three execution layers agree
on every kernel:

1. the IR reference interpreter (:func:`repro.ir.interp.run_kernel`) —
   semantic ground truth;
2. the untimed DFG token interpreter (:func:`repro.dfg.interp.run_dfg`)
   under several admissible firing orders — the lowering's oracle;
3. the cycle-level simulator (:func:`repro.sim.engine.simulate`) with
   runtime invariant checking enabled — the timing model.

:func:`check_kernel` runs one kernel through all of them and diffs
final array states element-by-element plus op/firing counts, producing
a structured :class:`ConformanceReport`: the first divergent array and
index with the per-layer values, any protocol failure (token leak,
deadlock, invariant violation), and a config digest naming exactly what
was compared. Dataflow determinism makes the comparison exact: a node's
input sequences are fixed by data dependencies, not by scheduling, so
per-node firing counts and even float results are bit-identical across
admissible schedules — any inequality is a bug, never noise.

Comparability notes: the two DFG layers execute the *same* graph, so
their per-op firing counts must match exactly. The IR interpreter is
compared on the memory-op subset only — lowering materializes loop
control (``i+1``, ``i<n``) as extra ``binop`` nodes, so arithmetic
counts legitimately differ across the IR boundary. Store counts match
exactly (stores are never optimized away); load counts are one-sided
(``eliminate_dead`` may prune a load whose value is unused, but the
lowering must never invent one).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from repro.arch.params import ArchParams
from repro.dfg.interp import run_dfg
from repro.errors import DFGError, PnRError, ReproError, SimulationError
from repro.ir.ast import Kernel
from repro.ir.interp import run_kernel
from repro.obs.manifest import config_digest
from repro.sim.engine import simulate

#: Firing orders the untimed DFG interpreter is exercised under.
DEFAULT_ORDERS = ("fifo", "lifo", "random")

#: Cap on recorded divergences per report (the first is the one that
#: matters for debugging; the cap keeps reports bounded on total loss).
MAX_DIVERGENCES = 16


@dataclasses.dataclass(frozen=True)
class Divergence:
    """One disagreement between two layers (or a layer failure).

    ``kind`` is ``"array"`` (a memory cell differs), ``"op-counts"``
    (firing/op ledgers differ), ``"protocol"`` (a layer raised: token
    leak, deadlock, invariant violation), or ``"reference"`` (a layer
    disagrees with a workload's golden output).
    """

    kind: str
    layers: tuple[str, ...]
    array: str | None = None
    index: int | None = None
    #: Per-layer value at the divergent point (or error text).
    values: tuple[tuple[str, object], ...] = ()
    detail: str = ""

    def describe(self) -> str:
        where = ""
        if self.array is not None:
            where = f" at {self.array}[{self.index}]"
        vals = ", ".join(f"{layer}={value!r}" for layer, value in self.values)
        body = self.detail or vals
        return f"[{self.kind}] {' vs '.join(self.layers)}{where}: {body}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "layers": list(self.layers),
            "array": self.array,
            "index": self.index,
            "values": {layer: value for layer, value in self.values},
            "detail": self.detail,
        }


@dataclasses.dataclass
class ConformanceReport:
    """Outcome of one three-way differential run."""

    name: str
    config: str
    layers: tuple[str, ...]
    divergences: list[Divergence]
    #: Per-layer op/firing counts actually observed.
    op_counts: dict[str, dict[str, int]]
    #: Timed-simulation system cycles (0 when the sim layer failed).
    cycles: int = 0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def digest(self) -> str:
        """Stable digest of the full outcome (serial == parallel)."""
        return config_digest(
            {
                "report": self.name,
                "config": self.config,
                "layers": list(self.layers),
                "divergences": [d.to_dict() for d in self.divergences],
                "op_counts": self.op_counts,
                "cycles": self.cycles,
            }
        )

    def describe(self) -> str:
        status = "OK" if self.ok else f"{len(self.divergences)} divergence(s)"
        lines = [
            f"{self.name}: {status} "
            f"(layers {', '.join(self.layers)}; config {self.config}; "
            f"{self.cycles} cycles)"
        ]
        lines += [f"  {d.describe()}" for d in self.divergences]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "config": self.config,
            "digest": self.digest(),
            "layers": list(self.layers),
            "cycles": self.cycles,
            "op_counts": self.op_counts,
            "divergences": [d.to_dict() for d in self.divergences],
        }


def _memory_digest(memory: dict[str, list]) -> str:
    payload = json.dumps(
        {name: data for name, data in sorted(memory.items())},
        sort_keys=True,
        default=str,
    ).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _with_check(arch: ArchParams) -> ArchParams:
    if arch.sim.check:
        return arch
    return dataclasses.replace(
        arch, sim=dataclasses.replace(arch.sim, check=True)
    )


def _diff_memory(
    reference: dict[str, list],
    ref_layer: str,
    memory: dict[str, list],
    layer: str,
    out: list[Divergence],
) -> None:
    for array in sorted(reference):
        want = reference[array]
        got = memory.get(array)
        if got is None or len(got) != len(want):
            out.append(
                Divergence(
                    "array",
                    (ref_layer, layer),
                    array=array,
                    detail=(
                        f"array missing or wrong length "
                        f"({None if got is None else len(got)} vs "
                        f"{len(want)})"
                    ),
                )
            )
            continue
        for index, (w, g) in enumerate(zip(want, got)):
            if g != w:
                out.append(
                    Divergence(
                        "array",
                        (ref_layer, layer),
                        array=array,
                        index=index,
                        values=((ref_layer, w), (layer, g)),
                    )
                )
                break  # first divergent index per array is enough
        if len(out) >= MAX_DIVERGENCES:
            return


def check_kernel(
    kernel: Kernel,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    *,
    arch: ArchParams | None = None,
    compiled=None,
    fabric=None,
    orders: tuple[str, ...] = DEFAULT_ORDERS,
    seed: int = 0,
    divider: int | None = None,
    frontend_factory=None,
    anneal_moves: int | None = None,
    name: str | None = None,
    reference_outputs: dict[str, list] | None = None,
    tolerance: float = 0.0,
) -> ConformanceReport:
    """Run ``kernel`` through all three layers and diff the results.

    The IR interpreter is the ground truth: if *it* fails the kernel is
    invalid and the error propagates. DFG/sim-layer failures (token
    leaks, deadlocks, invariant violations) are *findings* — recorded as
    ``protocol`` divergences so the fuzzer can shrink them. ``compiled``
    short-circuits compilation (the workload harness passes its cached
    :class:`~repro.pnr.result.CompiledKernel`); otherwise the kernel is
    compiled at parallelism 1 on ``fabric`` (default Monaco 12x12).
    :class:`~repro.errors.PnRError` propagates — an unroutable kernel is
    a capacity limit, not a conformance finding.
    """
    params = dict(params or {})
    arch = arch or ArchParams()
    label = name or kernel.name
    divergences: list[Divergence] = []
    op_counts: dict[str, dict[str, int]] = {}

    # Layer 1: IR reference interpreter (ground truth).
    ir_counts: dict[str, int] = {}
    ir_memory = run_kernel(kernel, params, arrays, counts=ir_counts)
    op_counts["ir"] = dict(sorted(ir_counts.items()))

    # Compile once (PnR is deterministic given the seed); the simulator
    # and the untimed interpreter then execute the *same* graph, making
    # per-op firing counts exactly comparable.
    if compiled is None:
        from repro.arch.fabric import monaco
        from repro.pnr.flow import compile_once

        compiled = compile_once(
            kernel,
            fabric if fabric is not None else monaco(),
            arch,
            parallelism=1,
            seed=seed,
            anneal_moves=anneal_moves,
        )
    dfg = compiled.dfg

    # Static lint (pillar 3) over the graph the layers below execute.
    from repro.check.lint import lint_dfg

    for issue in lint_dfg(dfg):
        divergences.append(
            Divergence("protocol", ("lint",), detail=issue.describe())
        )

    digest = config_digest(
        {
            "oracle": label,
            "params": {k: params[k] for k in sorted(params)},
            "arrays": _memory_digest(
                {k: list(v) for k, v in (arrays or {}).items()}
            ),
            "orders": list(orders),
            "seed": seed,
            "divider": divider,
            "fabric": compiled.fabric.name,
            "fifo_capacity": arch.sim.fifo_capacity,
            "max_outstanding": arch.sim.max_outstanding,
            "noc_tracks": arch.noc_tracks,
        }
    )
    layers: list[str] = ["ir"]

    # Layer 2: untimed DFG interpreter under every requested order.
    dfg_firings: dict[str, int] | None = None
    for order in orders:
        layer = f"dfg-{order}"
        layers.append(layer)
        try:
            interp = run_dfg(dfg, params, arrays, order=order, seed=seed)
        except DFGError as error:
            divergences.append(
                Divergence("protocol", (layer,), detail=str(error))
            )
            continue
        op_counts[layer] = dict(sorted(interp.firings.items()))
        _diff_memory(ir_memory, "ir", interp.memory, layer, divergences)
        if dfg_firings is None:
            dfg_firings = interp.firings
        elif interp.firings != dfg_firings:
            divergences.append(
                Divergence(
                    "op-counts",
                    (f"dfg-{orders[0]}", layer),
                    detail=(
                        "firing counts differ across admissible "
                        f"schedules: {dfg_firings!r} vs "
                        f"{interp.firings!r}"
                    ),
                )
            )

    # Layer 3: cycle-level simulator, invariant checkers armed.
    layers.append("sim")
    sim_kwargs = {"divider": divider}
    if frontend_factory is not None:
        sim_kwargs["frontend_factory"] = frontend_factory
    cycles = 0
    try:
        result = simulate(
            compiled, params, arrays, _with_check(arch), **sim_kwargs
        )
    except (SimulationError, DFGError) as error:
        divergences.append(
            Divergence(
                "protocol",
                ("sim",),
                detail=f"{type(error).__name__}: {error}",
            )
        )
    else:
        cycles = result.stats.system_cycles
        op_counts["sim"] = dict(sorted(result.stats.firings.items()))
        _diff_memory(ir_memory, "ir", result.memory, "sim", divergences)
        if dfg_firings is not None and result.stats.firings != dfg_firings:
            divergences.append(
                Divergence(
                    "op-counts",
                    (f"dfg-{orders[0]}", "sim"),
                    detail=(
                        "timed firing counts differ from the untimed "
                        f"interpreter: {dfg_firings!r} vs "
                        f"{result.stats.firings!r}"
                    ),
                )
            )
        if reference_outputs is not None:
            _diff_reference(
                reference_outputs, result.memory, tolerance, divergences
            )

    # IR vs DFG on the memory-op subset (see module doc). Stores are
    # never optimized away, so their counts match exactly; loads are
    # one-sided — ``eliminate_dead`` legally prunes a load whose value
    # is unused (fuzz-discovered: ``v = X[0]`` with ``v`` dead), but
    # the lowering must never *invent* a load the program didn't run.
    if dfg_firings is not None:
        ir_stores = ir_counts.get("store", 0)
        dfg_stores = dfg_firings.get("store", 0)
        if ir_stores != dfg_stores:
            divergences.append(
                Divergence(
                    "op-counts",
                    ("ir", f"dfg-{orders[0]}"),
                    detail=(
                        f"{ir_stores} IR stores executed but "
                        f"{dfg_stores} store node firings"
                    ),
                )
            )
        ir_loads = ir_counts.get("load", 0)
        dfg_loads = dfg_firings.get("load", 0)
        if dfg_loads > ir_loads:
            divergences.append(
                Divergence(
                    "op-counts",
                    ("ir", f"dfg-{orders[0]}"),
                    detail=(
                        f"{dfg_loads} load node firings exceed the "
                        f"{ir_loads} loads the program executed"
                    ),
                )
            )

    return ConformanceReport(
        name=label,
        config=digest,
        layers=tuple(layers),
        divergences=divergences[:MAX_DIVERGENCES],
        op_counts=op_counts,
        cycles=cycles,
    )


def _diff_reference(
    reference: dict[str, list],
    memory: dict[str, list],
    tolerance: float,
    out: list[Divergence],
) -> None:
    for array in sorted(reference):
        want = reference[array]
        got = memory.get(array, [])
        for index, (w, g) in enumerate(zip(want, got)):
            bad = abs(g - w) > tolerance if tolerance else g != w
            if bad:
                out.append(
                    Divergence(
                        "reference",
                        ("sim", "golden"),
                        array=array,
                        index=index,
                        values=(("sim", g), ("golden", w)),
                    )
                )
                break


def check_workload(
    name: str,
    scale: str = "tiny",
    seed: int = 0,
    *,
    arch: ArchParams | None = None,
    orders: tuple[str, ...] = DEFAULT_ORDERS,
) -> ConformanceReport:
    """Three-way check of one Table-1 workload, plus its golden output.

    Compiles through the shared cache exactly like the experiment
    harness (same key, same parallelism search) so what the oracle
    certifies is the graph the experiments actually run.
    """
    from repro.arch.fabric import monaco
    from repro.exp.runner import PAPER_DIVIDER, compile_cached
    from repro.workloads.registry import make_workload

    arch = arch or ArchParams()
    instance = make_workload(name, scale, seed)
    compiled = compile_cached(instance, monaco(), arch, seed=seed)
    return check_kernel(
        instance.kernel,
        instance.params,
        instance.arrays,
        arch=arch,
        compiled=compiled,
        orders=orders,
        seed=seed,
        divider=PAPER_DIVIDER,
        name=f"{name}@{scale}",
        reference_outputs=instance.reference,
        tolerance=instance.tolerance,
    )


def run_conformance(
    names=None,
    scale: str = "tiny",
    seed: int = 0,
    *,
    arch: ArchParams | None = None,
) -> list[ConformanceReport]:
    """Run :func:`check_workload` over ``names`` (default: all 13)."""
    from repro.workloads.registry import ALL_WORKLOADS

    reports = []
    for name in names or ALL_WORKLOADS:
        try:
            reports.append(check_workload(name, scale, seed, arch=arch))
        except PnRError as error:
            reports.append(
                ConformanceReport(
                    name=f"{name}@{scale}",
                    config="-",
                    layers=(),
                    divergences=[
                        Divergence(
                            "protocol", ("pnr",), detail=str(error)
                        )
                    ],
                    op_counts={},
                )
            )
        except ReproError as error:
            reports.append(
                ConformanceReport(
                    name=f"{name}@{scale}",
                    config="-",
                    layers=(),
                    divergences=[
                        Divergence(
                            "protocol",
                            (type(error).__name__,),
                            detail=str(error),
                        )
                    ],
                    op_counts={},
                )
            )
    return reports
