"""Runtime invariant checkers for the cycle-level simulator.

The engine carries a ``check`` attribute wired exactly like ``obs`` and
``faults``: ``None`` by default (every hook site is gated on an
``is not None`` test, so the off-path executes zero extra work and stays
bit-identical to a build without this module), or an
:class:`InvariantChecker` when ``ArchParams.sim.check`` is set. The
checker only *reads* simulator state — it never mutates FIFOs, stats or
schedules — so results with checking on are bit-identical too; only a
*violation* changes behaviour, by raising :class:`InvariantViolation`.

Invariant catalog (see INTERNALS Sec. 8):

**Shadow-FIFO timestamps** (token conservation + cadence).  The checker
mirrors every token FIFO with a queue of *push cycles*. A push is
recorded when the engine commits it; a pop asserts the shadow queue is
non-empty and that the front stamp is strictly older than the current
cycle (pushes commit at end-of-tick and become consumable at the next
fabric tick). Together with the per-edge ``pushed == popped`` audit at
quiescence this proves no token is consumed twice, conjured from
nothing, or consumed in the same tick it was produced.

**FIFO capacity.**  Each shadow push asserts the mirrored occupancy
never exceeds ``fifo_capacity`` — independently of the engine's own
overflow guard, so a bookkeeping bug in ``pending_pushes`` cannot mask
an overflow.

**Memory-ordering monotonicity.**  A load/store whose input is fed by
another memory node (the lowering's ordering-token chains) must not
issue before that predecessor has delivered at least one response, and
strictly after the predecessor's first response emission. Combined with
the shadow-stamp rule this proves a dependent access never issues
before its predecessor's response arrived at the PE. Response delivery
is additionally checked to be per-node in issue order (``seq``
monotone) with ``issue_cycle <= arrived_cycle <= now``.

**Stats-ledger identities** (checked at quiescence):

* ``executed_cycles + skipped_cycles == system_cycles + 1`` — the
  cycle-skipping scheduler accounts for every system cycle exactly once;
* ``hits + misses == loads + stores`` — every bank service classifies;
* ``loads == firings["load"]`` and ``stores == firings["store"]`` —
  every memory firing was served exactly once (holds under fault
  injection too: a *dropped* response was still served);
* issues == responses delivered, zero tokens and in-flight requests
  remain, and the engine's ``firings`` ledger equals the checker's own
  independent count of commit events;
* the fabric-memory frontend's ``audit()`` recount of requests inside
  the network agrees with its ``in_network`` counter and is zero.
"""

from __future__ import annotations

from collections import deque

from repro.dfg.graph import DFG, PortRef
from repro.errors import SimulationError

_MEM_OPS = ("load", "store")


class InvariantViolation(SimulationError):
    """A runtime invariant of the simulator was broken.

    Subclasses :class:`SimulationError` so existing harness failure
    taxonomies classify it as a deterministic simulation failure (never
    retried by the sweep supervisor).
    """


class InvariantChecker:
    """Runtime invariant checks over one engine run (see module doc)."""

    def __init__(self, dfg: DFG, capacity: int, max_outstanding: int):
        self.dfg = dfg
        self.capacity = capacity
        self.max_outstanding = max_outstanding
        #: Shadow token FIFOs: push-cycle stamps per (consumer, port).
        self.shadow: dict[tuple[int, int], deque[int]] = {}
        self.pushed: dict[tuple[int, int], int] = {}
        self.popped: dict[tuple[int, int], int] = {}
        for node in dfg.nodes.values():
            for index, inp in enumerate(node.inputs):
                if isinstance(inp, PortRef):
                    key = (node.nid, index)
                    self.shadow[key] = deque()
                    self.pushed[key] = 0
                    self.popped[key] = 0
        #: Independent firing ledger (per op kind).
        self.fired: dict[str, int] = {}
        self.issues = 0
        self.responses = 0
        self._last_seq: dict[int, int] = {}
        #: nid -> (response count, first emission cycle).
        self._emits: dict[int, tuple[int, int]] = {}
        #: Memory node -> direct memory-node predecessors (ordering-token
        #: producers feeding it without intermediate gating).
        self._mem_preds: dict[int, tuple[int, ...]] = {}
        memory_ids = {
            n.nid for n in dfg.nodes.values() if n.op in _MEM_OPS
        }
        for nid in memory_ids:
            preds = tuple(
                inp.src
                for inp in dfg.nodes[nid].inputs
                if isinstance(inp, PortRef) and inp.src in memory_ids
            )
            if preds:
                self._mem_preds[nid] = preds

    # -- helpers -----------------------------------------------------------

    def _fail(self, rule: str, message: str) -> None:
        raise InvariantViolation(f"invariant {rule!r} violated: {message}")

    def _describe(self, nid: int) -> str:
        node = self.dfg.nodes[nid]
        return f"node {nid} ({node.op} {node.tag!r})"

    # -- hooks (called by the engine, gated on ``check is not None``) ------

    def fire(self, now: int, nid: int, decision) -> None:
        """A node committed a firing at fabric tick ``now``."""
        node = self.dfg.nodes[nid]
        self.fired[node.op] = self.fired.get(node.op, 0) + 1
        for index in decision.pops:
            key = (nid, index)
            queue = self.shadow[key]
            if not queue:
                self._fail(
                    "token-conservation",
                    f"{self._describe(nid)} popped port "
                    f"{node.port_name(index)} but the shadow FIFO is "
                    "empty — a token was consumed that was never pushed",
                )
            stamp = queue.popleft()
            self.popped[key] += 1
            if stamp >= now:
                self._fail(
                    "token-cadence",
                    f"{self._describe(nid)} consumed a token on port "
                    f"{node.port_name(index)} at cycle {now} that was "
                    f"pushed at cycle {stamp}; tokens only become "
                    "visible at the tick after their push commits",
                )

    def issue(self, now: int, nid: int, outstanding: int) -> None:
        """A memory node issued a request at cycle ``now``."""
        self.issues += 1
        if outstanding >= self.max_outstanding:
            self._fail(
                "max-outstanding",
                f"{self._describe(nid)} issued with {outstanding} "
                f"requests already in flight (limit "
                f"{self.max_outstanding})",
            )
        for pred in self._mem_preds.get(nid, ()):
            entry = self._emits.get(pred)
            if entry is None:
                self._fail(
                    "memory-ordering",
                    f"{self._describe(nid)} issued at cycle {now} but "
                    f"its ordering predecessor {self._describe(pred)} "
                    "has never delivered a response",
                )
            if entry[1] >= now:
                self._fail(
                    "memory-ordering",
                    f"{self._describe(nid)} issued at cycle {now}, not "
                    "strictly after its ordering predecessor "
                    f"{self._describe(pred)} first responded "
                    f"(cycle {entry[1]})",
                )

    def response(self, now: int, nid: int, record) -> None:
        """A memory response was emitted into the fabric at ``now``."""
        self.responses += 1
        if record.arrived_cycle is None or not (
            record.issue_cycle <= record.arrived_cycle <= now
        ):
            self._fail(
                "response-timing",
                f"{self._describe(nid)} emitted a response at cycle "
                f"{now} with issue={record.issue_cycle} "
                f"arrived={record.arrived_cycle}; emission must follow "
                "arrival, which must follow issue",
            )
        last = self._last_seq.get(nid)
        if last is not None and record.seq <= last:
            self._fail(
                "response-order",
                f"{self._describe(nid)} delivered seq {record.seq} "
                f"after seq {last}; loads deliver responses in issue "
                "order",
            )
        self._last_seq[nid] = record.seq
        entry = self._emits.get(nid)
        if entry is None:
            self._emits[nid] = (1, now)
        else:
            self._emits[nid] = (entry[0] + 1, entry[1])

    def commit(self, now: int, pushes: list, consumers: dict) -> None:
        """The engine commits this tick's token pushes."""
        for nid, _value in pushes:
            for key in consumers[nid]:
                queue = self.shadow[key]
                queue.append(now)
                self.pushed[key] += 1
                if len(queue) > self.capacity:
                    consumer, index = key
                    node = self.dfg.nodes[consumer]
                    self._fail(
                        "fifo-capacity",
                        f"{self._describe(consumer)} port "
                        f"{node.port_name(index)} holds {len(queue)} "
                        f"tokens (capacity {self.capacity}) after the "
                        f"commit at cycle {now}",
                    )

    def finish(self, stats, engine) -> None:
        """Quiescence ledger identities (see module doc)."""
        cycles = stats.executed_cycles + stats.skipped_cycles
        if cycles != stats.system_cycles + 1:
            self._fail(
                "cycle-ledger",
                f"executed ({stats.executed_cycles}) + skipped "
                f"({stats.skipped_cycles}) = {cycles} != system_cycles "
                f"+ 1 = {stats.system_cycles + 1}; the cycle-skipping "
                "scheduler lost or double-counted a cycle",
            )
        mem = stats.mem
        if mem.hits + mem.misses != mem.loads + mem.stores:
            self._fail(
                "cache-ledger",
                f"hits ({mem.hits}) + misses ({mem.misses}) != loads "
                f"({mem.loads}) + stores ({mem.stores}); a bank service "
                "escaped cache classification",
            )
        for op, served in (("load", mem.loads), ("store", mem.stores)):
            firings = stats.firings.get(op, 0)
            if served != firings:
                self._fail(
                    "service-ledger",
                    f"{served} {op}s served by the banks but {firings} "
                    f"{op} firings committed; every memory firing must "
                    "be served exactly once",
                )
        if mem.responses != mem.loads:
            self._fail(
                "arrival-ledger",
                f"{mem.loads} loads served but {mem.responses} load "
                "responses arrived at PEs; a quiescent machine must "
                "have delivered every reply",
            )
        if self.issues != self.responses:
            self._fail(
                "completion-ledger",
                f"{self.issues} requests issued, {self.responses} "
                "responses delivered; a quiescent machine must have "
                "completed every request",
            )
        if engine.tokens != 0 or engine.mem_inflight != 0:
            self._fail(
                "quiescence",
                f"engine finished with {engine.tokens} tokens and "
                f"{engine.mem_inflight} memory requests still counted "
                "in flight",
            )
        for key, queue in self.shadow.items():
            if queue or self.pushed[key] != self.popped[key]:
                consumer, index = key
                node = self.dfg.nodes[consumer]
                self._fail(
                    "token-conservation",
                    f"{self._describe(consumer)} port "
                    f"{node.port_name(index)}: {self.pushed[key]} "
                    f"pushed vs {self.popped[key]} popped "
                    f"({len(queue)} stamp(s) left) at quiescence",
                )
        if self.fired != stats.firings:
            self._fail(
                "firing-ledger",
                f"engine firing ledger {stats.firings!r} disagrees with "
                f"the checker's independent count {self.fired!r}",
            )
        audit = getattr(engine.frontend, "audit", None)
        if audit is not None:
            counted = audit()
            if counted != 0:
                self._fail(
                    "frontend-audit",
                    f"frontend audit recounted {counted} request(s) "
                    "still inside the fabric-memory network at "
                    "quiescence",
                )
            in_network = getattr(engine.frontend, "in_network", None)
            if in_network is not None and in_network != counted:
                self._fail(
                    "frontend-audit",
                    f"frontend in_network counter ({in_network}) "
                    f"disagrees with the structural recount ({counted})",
                )
