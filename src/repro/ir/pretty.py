"""Pretty-printer for kernel IR (debugging and golden tests)."""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.ast import (
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)


def format_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return (
                f"{expr.op}({format_expr(expr.lhs)}, "
                f"{format_expr(expr.rhs)})"
            )
        return f"({format_expr(expr.lhs)} {expr.op} {format_expr(expr.rhs)})"
    if isinstance(expr, UnOp):
        if expr.op == "abs":
            return f"abs({format_expr(expr.operand)})"
        return f"({expr.op} {format_expr(expr.operand)})"
    if isinstance(expr, Select):
        return (
            f"select({format_expr(expr.cond)}, "
            f"{format_expr(expr.on_true)}, {format_expr(expr.on_false)})"
        )
    raise IRError(f"unknown expression {expr!r}")


def format_stmt(stmt: Stmt, indent: int = 0) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.var} = {format_expr(stmt.expr)}"]
    if isinstance(stmt, Load):
        return [
            f"{pad}{stmt.var} = {stmt.array}[{format_expr(stmt.index)}]"
        ]
    if isinstance(stmt, Store):
        return [
            f"{pad}{stmt.array}[{format_expr(stmt.index)}] = "
            f"{format_expr(stmt.value)}"
        ]
    if isinstance(stmt, If):
        lines = [f"{pad}if {format_expr(stmt.cond)}:"]
        lines += _body(stmt.then_body, indent + 1)
        if stmt.else_body:
            lines.append(f"{pad}else:")
            lines += _body(stmt.else_body, indent + 1)
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while {format_expr(stmt.cond)}:"]
        return lines + _body(stmt.body, indent + 1)
    if isinstance(stmt, (For, ParFor)):
        keyword = "parfor" if isinstance(stmt, ParFor) else "for"
        header = (
            f"{pad}{keyword} {stmt.var} in range("
            f"{format_expr(stmt.lo)}, {format_expr(stmt.hi)}"
        )
        if not (isinstance(stmt.step, Const) and stmt.step.value == 1):
            header += f", {format_expr(stmt.step)}"
        header += "):"
        return [header] + _body(stmt.body, indent + 1)
    if isinstance(stmt, Par):
        lines = [f"{pad}par:"]
        for index, block in enumerate(stmt.blocks):
            lines.append(f"{pad}  block {index}:")
            lines += _body(block, indent + 2)
        return lines
    raise IRError(f"unknown statement {type(stmt).__name__}")


def _body(body: list[Stmt], indent: int) -> list[str]:
    if not body:
        return ["  " * indent + "pass"]
    lines: list[str] = []
    for stmt in body:
        lines += format_stmt(stmt, indent)
    return lines


def format_kernel(kernel: Kernel) -> str:
    """Render a kernel as pseudo-code."""
    params = ", ".join(kernel.params)
    lines = [f"kernel {kernel.name}({params}):"]
    for spec in kernel.arrays:
        lines.append(f"  array {spec.name}[{spec.size}] : {spec.dtype}")
    lines += _body(kernel.body, 1)
    return "\n".join(lines)
