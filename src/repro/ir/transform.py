"""IR transforms: spatial parallelization of ``parfor`` loops.

effcc "lifts loops to the scf dialect's parallel loop primitive whenever
possible, and such loops are replicated by a chosen parallelism degree"
(Sec. 5). :func:`parallelize` is that replication: an outermost ``parfor``
over ``range(lo, hi, step)`` becomes ``degree`` concurrent counted loops,
worker ``k`` handling iterations ``lo + k*step, lo + (k+degree)*step, ...``
(strided partitioning for load balance). Worker-local variables are renamed
apart so the copies share nothing but memory.
"""

from __future__ import annotations

import dataclasses

from repro.errors import IRError
from repro.ir.ast import (
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)


def parallelize(kernel: Kernel, degree: int) -> Kernel:
    """Return a copy of ``kernel`` with outermost parfors split ``degree``-way.

    ``degree == 1`` keeps the program sequential (parfors become plain
    ``for`` loops). Inner parfors always run sequentially; Monaco-style SDAs
    parallelize one loop level spatially.
    """
    if degree < 1:
        raise IRError(f"parallelism degree must be >= 1, got {degree}")
    body = [_transform_stmt(stmt, degree) for stmt in kernel.body]
    return Kernel(kernel.name, list(kernel.params), list(kernel.arrays), body)


def _transform_stmt(stmt: Stmt, degree: int) -> Stmt:
    if isinstance(stmt, ParFor):
        return _split_parfor(stmt, degree)
    if isinstance(stmt, If):
        return If(
            stmt.cond,
            [_transform_stmt(s, degree) for s in stmt.then_body],
            [_transform_stmt(s, degree) for s in stmt.else_body],
        )
    if isinstance(stmt, While):
        return While(
            stmt.cond, [_transform_stmt(s, degree) for s in stmt.body]
        )
    if isinstance(stmt, For):
        return For(
            stmt.var,
            stmt.lo,
            stmt.hi,
            stmt.step,
            [_transform_stmt(s, degree) for s in stmt.body],
        )
    if isinstance(stmt, Par):
        return Par(
            [[_transform_stmt(s, degree) for s in blk] for blk in stmt.blocks]
        )
    return stmt


def _split_parfor(stmt: ParFor, degree: int) -> Stmt:
    sequential_body = [_sequentialize(s) for s in stmt.body]
    if degree == 1:
        return For(stmt.var, stmt.lo, stmt.hi, stmt.step, sequential_body)
    blocks: list[list[Stmt]] = []
    for worker in range(degree):
        rename = _worker_rename(stmt, worker)
        offset = BinOp(
            "+", stmt.lo, BinOp("*", Const(worker), stmt.step)
        )
        stride = BinOp("*", stmt.step, Const(degree))
        body = [_rename_stmt(s, rename) for s in sequential_body]
        blocks.append(
            [For(rename[stmt.var], offset, stmt.hi, stride, body)]
        )
    return Par(blocks)


def _sequentialize(stmt: Stmt) -> Stmt:
    """Turn nested parfors into plain for loops."""
    if isinstance(stmt, ParFor):
        return For(
            stmt.var,
            stmt.lo,
            stmt.hi,
            stmt.step,
            [_sequentialize(s) for s in stmt.body],
        )
    if isinstance(stmt, If):
        return If(
            stmt.cond,
            [_sequentialize(s) for s in stmt.then_body],
            [_sequentialize(s) for s in stmt.else_body],
        )
    if isinstance(stmt, While):
        return While(stmt.cond, [_sequentialize(s) for s in stmt.body])
    if isinstance(stmt, For):
        return For(
            stmt.var,
            stmt.lo,
            stmt.hi,
            stmt.step,
            [_sequentialize(s) for s in stmt.body],
        )
    if isinstance(stmt, Par):
        return Par([[_sequentialize(s) for s in blk] for blk in stmt.blocks])
    return stmt


def _locally_defined(body: list[Stmt]) -> set[str]:
    """Every variable assigned anywhere inside ``body`` (recursively)."""
    names: set[str] = set()
    for stmt in body:
        if isinstance(stmt, (Assign, Load)):
            names.add(stmt.var)
        elif isinstance(stmt, If):
            names |= _locally_defined(stmt.then_body)
            names |= _locally_defined(stmt.else_body)
        elif isinstance(stmt, (While, For, ParFor)):
            if isinstance(stmt, (For, ParFor)):
                names.add(stmt.var)
            names |= _locally_defined(stmt.body)
        elif isinstance(stmt, Par):
            for block in stmt.blocks:
                names |= _locally_defined(block)
    return names


def _worker_rename(stmt: ParFor, worker: int) -> dict[str, str]:
    local = _locally_defined(stmt.body) | {stmt.var}
    return {name: f"{name}#{worker}" for name in local}


def _rename_expr(expr: Expr, rename: dict[str, str]) -> Expr:
    if isinstance(expr, Var):
        return Var(rename.get(expr.name, expr.name))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op,
            _rename_expr(expr.lhs, rename),
            _rename_expr(expr.rhs, rename),
        )
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rename_expr(expr.operand, rename))
    if isinstance(expr, Select):
        return Select(
            _rename_expr(expr.cond, rename),
            _rename_expr(expr.on_true, rename),
            _rename_expr(expr.on_false, rename),
        )
    return expr


def _rename_stmt(stmt: Stmt, rename: dict[str, str]) -> Stmt:
    if isinstance(stmt, Assign):
        return Assign(
            rename.get(stmt.var, stmt.var), _rename_expr(stmt.expr, rename)
        )
    if isinstance(stmt, Load):
        return Load(
            rename.get(stmt.var, stmt.var),
            stmt.array,
            _rename_expr(stmt.index, rename),
        )
    if isinstance(stmt, Store):
        return Store(
            stmt.array,
            _rename_expr(stmt.index, rename),
            _rename_expr(stmt.value, rename),
        )
    if isinstance(stmt, If):
        return If(
            _rename_expr(stmt.cond, rename),
            [_rename_stmt(s, rename) for s in stmt.then_body],
            [_rename_stmt(s, rename) for s in stmt.else_body],
        )
    if isinstance(stmt, While):
        return While(
            _rename_expr(stmt.cond, rename),
            [_rename_stmt(s, rename) for s in stmt.body],
        )
    if isinstance(stmt, (For, ParFor)):
        cls = type(stmt)
        return cls(
            rename.get(stmt.var, stmt.var),
            _rename_expr(stmt.lo, rename),
            _rename_expr(stmt.hi, rename),
            _rename_expr(stmt.step, rename),
            [_rename_stmt(s, rename) for s in stmt.body],
        )
    if isinstance(stmt, Par):
        return Par(
            [[_rename_stmt(s, rename) for s in blk] for blk in stmt.blocks]
        )
    return dataclasses.replace(stmt)
