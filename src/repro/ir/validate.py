"""Kernel IR validation.

Enforces the structural rules the dataflow lowering relies on:

* every variable is defined before use on all paths;
* a variable assigned inside a conditional or loop and used afterwards must
  also be defined before the region (the lowering needs an incoming value
  for the merge / loop-carry);
* ``parfor`` bodies do not assign variables defined outside the loop;
* arrays are declared before use and constant loop steps are positive.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.ast import (
    Assign,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Stmt,
    Store,
    While,
    expr_vars,
)


def validate_kernel(kernel: Kernel) -> None:
    """Raise :class:`IRError` if ``kernel`` violates any structural rule."""
    declared_arrays = set(kernel.array_names())
    if len(declared_arrays) != len(kernel.arrays):
        raise IRError(f"kernel {kernel.name}: duplicate array declaration")
    if len(set(kernel.params)) != len(kernel.params):
        raise IRError(f"kernel {kernel.name}: duplicate parameter")
    checker = _Checker(kernel.name, declared_arrays)
    checker.check_block(kernel.body, set(kernel.params))


class _Checker:
    def __init__(self, kernel_name: str, arrays: set[str]):
        self.kernel_name = kernel_name
        self.arrays = arrays

    def fail(self, message: str) -> None:
        raise IRError(f"kernel {self.kernel_name}: {message}")

    def check_expr(self, expr: Expr, defined: set[str], where: str) -> None:
        missing = expr_vars(expr) - defined
        if missing:
            name = sorted(missing)[0]
            self.fail(f"variable {name!r} used before definition in {where}")

    def check_array(self, name: str) -> None:
        if name not in self.arrays:
            self.fail(f"array {name!r} is not declared")

    def check_step(self, stmt: For | ParFor) -> None:
        if isinstance(stmt.step, Const) and stmt.step.value <= 0:
            self.fail(f"loop over {stmt.var!r} has non-positive step")

    def check_block(self, body: list[Stmt], defined: set[str]) -> set[str]:
        """Check ``body``; return the set of vars defined after it."""
        defined = set(defined)
        for stmt in body:
            defined = self.check_stmt(stmt, defined)
        return defined

    def check_stmt(self, stmt: Stmt, defined: set[str]) -> set[str]:
        if isinstance(stmt, Assign):
            self.check_expr(stmt.expr, defined, f"assignment to {stmt.var!r}")
            return defined | {stmt.var}
        if isinstance(stmt, Load):
            self.check_array(stmt.array)
            self.check_expr(stmt.index, defined, f"load from {stmt.array!r}")
            return defined | {stmt.var}
        if isinstance(stmt, Store):
            self.check_array(stmt.array)
            self.check_expr(stmt.index, defined, f"store to {stmt.array!r}")
            self.check_expr(stmt.value, defined, f"store to {stmt.array!r}")
            return defined
        if isinstance(stmt, If):
            self.check_expr(stmt.cond, defined, "if condition")
            after_then = self.check_block(stmt.then_body, defined)
            after_else = self.check_block(stmt.else_body, defined)
            # Vars surviving the conditional: defined before, or in both arms.
            return defined | (after_then & after_else)
        if isinstance(stmt, While):
            # Carried variables must exist before the loop: the body may only
            # reference vars defined before the loop or (re)defined earlier
            # in the body itself, starting from the pre-loop environment.
            self.check_expr(stmt.cond, defined, "while condition")
            after = self.check_block(stmt.body, defined)
            new_vars = after - defined
            self._check_loop_cond_defined(stmt.cond, defined)
            del new_vars  # body-local temporaries die at the loop back-edge
            return defined
        if isinstance(stmt, (For, ParFor)):
            if stmt.var in defined:
                self.fail(
                    f"loop variable {stmt.var!r} shadows an existing "
                    "definition"
                )
            self.check_step(stmt)
            for expr, where in (
                (stmt.lo, "loop lower bound"),
                (stmt.hi, "loop upper bound"),
                (stmt.step, "loop step"),
            ):
                self.check_expr(expr, defined, where)
            inner = defined | {stmt.var}
            after = self.check_block(stmt.body, inner)
            if isinstance(stmt, ParFor):
                reassigned = {
                    s.var
                    for s in stmt.body
                    if isinstance(s, (Assign, Load)) and s.var in defined
                }
                reassigned |= self._deep_outer_writes(stmt.body, defined)
                if reassigned:
                    name = sorted(reassigned)[0]
                    self.fail(
                        f"parfor over {stmt.var!r} assigns outer "
                        f"variable {name!r}"
                    )
            del after
            return defined
        if isinstance(stmt, Par):
            for block in stmt.blocks:
                self.check_block(block, defined)
            return defined
        self.fail(f"unknown statement type {type(stmt).__name__}")
        return defined  # pragma: no cover

    def _check_loop_cond_defined(self, cond: Expr, defined: set[str]) -> None:
        missing = expr_vars(cond) - defined
        if missing:
            name = sorted(missing)[0]
            self.fail(
                f"while condition reads {name!r}, which is not defined "
                "before the loop (loop-carried vars must be initialized)"
            )

    def _deep_outer_writes(
        self, body: list[Stmt], outer: set[str]
    ) -> set[str]:
        """Vars from ``outer`` assigned anywhere (recursively) in ``body``."""
        writes: set[str] = set()
        local = set()
        for stmt in body:
            if isinstance(stmt, (Assign, Load)):
                if stmt.var in outer and stmt.var not in local:
                    writes.add(stmt.var)
                local.add(stmt.var)
            elif isinstance(stmt, If):
                writes |= self._deep_outer_writes(
                    stmt.then_body, outer - local
                )
                writes |= self._deep_outer_writes(
                    stmt.else_body, outer - local
                )
            elif isinstance(stmt, (While, For, ParFor)):
                writes |= self._deep_outer_writes(stmt.body, outer - local)
            elif isinstance(stmt, Par):
                for block in stmt.blocks:
                    writes |= self._deep_outer_writes(block, outer - local)
        return writes
