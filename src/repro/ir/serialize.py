"""JSON-roundtrippable serialization of the kernel IR.

Used by the conformance fuzzer (:mod:`repro.check.fuzz`) to write
minimal failing kernels into a corpus directory as plain JSON — a
reproducer must survive without pickle (version-fragile, unreviewable)
and be diffable in code review. ``kernel_from_dict(kernel_to_dict(k))``
is structurally identical to ``k`` for every construct the IR has.
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.ast import (
    ArraySpec,
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)


def expr_to_dict(expr: Expr) -> dict:
    if isinstance(expr, Const):
        return {"e": "const", "value": expr.value}
    if isinstance(expr, Var):
        return {"e": "var", "name": expr.name}
    if isinstance(expr, BinOp):
        return {
            "e": "binop",
            "op": expr.op,
            "lhs": expr_to_dict(expr.lhs),
            "rhs": expr_to_dict(expr.rhs),
        }
    if isinstance(expr, UnOp):
        return {
            "e": "unop",
            "op": expr.op,
            "operand": expr_to_dict(expr.operand),
        }
    if isinstance(expr, Select):
        return {
            "e": "select",
            "cond": expr_to_dict(expr.cond),
            "on_true": expr_to_dict(expr.on_true),
            "on_false": expr_to_dict(expr.on_false),
        }
    raise IRError(f"cannot serialize expression {expr!r}")


def expr_from_dict(data: dict) -> Expr:
    kind = data["e"]
    if kind == "const":
        return Const(data["value"])
    if kind == "var":
        return Var(data["name"])
    if kind == "binop":
        return BinOp(
            data["op"],
            expr_from_dict(data["lhs"]),
            expr_from_dict(data["rhs"]),
        )
    if kind == "unop":
        return UnOp(data["op"], expr_from_dict(data["operand"]))
    if kind == "select":
        return Select(
            expr_from_dict(data["cond"]),
            expr_from_dict(data["on_true"]),
            expr_from_dict(data["on_false"]),
        )
    raise IRError(f"cannot deserialize expression kind {kind!r}")


def stmt_to_dict(stmt: Stmt) -> dict:
    if isinstance(stmt, Assign):
        return {"s": "assign", "var": stmt.var, "expr": expr_to_dict(stmt.expr)}
    if isinstance(stmt, Load):
        return {
            "s": "load",
            "var": stmt.var,
            "array": stmt.array,
            "index": expr_to_dict(stmt.index),
        }
    if isinstance(stmt, Store):
        return {
            "s": "store",
            "array": stmt.array,
            "index": expr_to_dict(stmt.index),
            "value": expr_to_dict(stmt.value),
        }
    if isinstance(stmt, If):
        return {
            "s": "if",
            "cond": expr_to_dict(stmt.cond),
            "then": [stmt_to_dict(s) for s in stmt.then_body],
            "else": [stmt_to_dict(s) for s in stmt.else_body],
        }
    if isinstance(stmt, While):
        return {
            "s": "while",
            "cond": expr_to_dict(stmt.cond),
            "body": [stmt_to_dict(s) for s in stmt.body],
        }
    if isinstance(stmt, (For, ParFor)):
        return {
            "s": "parfor" if isinstance(stmt, ParFor) else "for",
            "var": stmt.var,
            "lo": expr_to_dict(stmt.lo),
            "hi": expr_to_dict(stmt.hi),
            "step": expr_to_dict(stmt.step),
            "body": [stmt_to_dict(s) for s in stmt.body],
        }
    if isinstance(stmt, Par):
        return {
            "s": "par",
            "blocks": [
                [stmt_to_dict(s) for s in block] for block in stmt.blocks
            ],
        }
    raise IRError(f"cannot serialize statement {type(stmt).__name__}")


def stmt_from_dict(data: dict) -> Stmt:
    kind = data["s"]
    if kind == "assign":
        return Assign(data["var"], expr_from_dict(data["expr"]))
    if kind == "load":
        return Load(data["var"], data["array"], expr_from_dict(data["index"]))
    if kind == "store":
        return Store(
            data["array"],
            expr_from_dict(data["index"]),
            expr_from_dict(data["value"]),
        )
    if kind == "if":
        return If(
            expr_from_dict(data["cond"]),
            [stmt_from_dict(s) for s in data["then"]],
            [stmt_from_dict(s) for s in data["else"]],
        )
    if kind == "while":
        return While(
            expr_from_dict(data["cond"]),
            [stmt_from_dict(s) for s in data["body"]],
        )
    if kind in ("for", "parfor"):
        cls = ParFor if kind == "parfor" else For
        return cls(
            data["var"],
            expr_from_dict(data["lo"]),
            expr_from_dict(data["hi"]),
            expr_from_dict(data["step"]),
            [stmt_from_dict(s) for s in data["body"]],
        )
    if kind == "par":
        return Par(
            [[stmt_from_dict(s) for s in block] for block in data["blocks"]]
        )
    raise IRError(f"cannot deserialize statement kind {kind!r}")


def kernel_to_dict(kernel: Kernel) -> dict:
    return {
        "name": kernel.name,
        "params": list(kernel.params),
        "arrays": [
            {"name": a.name, "size": a.size, "dtype": a.dtype}
            for a in kernel.arrays
        ],
        "body": [stmt_to_dict(s) for s in kernel.body],
    }


def kernel_from_dict(data: dict) -> Kernel:
    return Kernel(
        data["name"],
        list(data["params"]),
        [
            ArraySpec(a["name"], a["size"], a.get("dtype", "i"))
            for a in data["arrays"]
        ],
        [stmt_from_dict(s) for s in data["body"]],
    )
