"""Reference interpreter for the kernel IR.

Executes kernels directly over Python scalars and list-backed arrays. This
is the semantic ground truth that both the dataflow lowering and the timed
simulator are validated against (see DESIGN.md, "three-level equivalence").
"""

from __future__ import annotations

from repro.errors import IRError
from repro.ir.ast import (
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
)
from repro.isa import apply_binop, apply_unop, truthy

#: Safety net against kernels that never terminate.
MAX_LOOP_ITERATIONS = 50_000_000


def run_kernel(
    kernel: Kernel,
    params: dict[str, int | float] | None = None,
    arrays: dict[str, list] | None = None,
    counts: dict[str, int] | None = None,
    max_iterations: int = MAX_LOOP_ITERATIONS,
) -> dict[str, list]:
    """Execute ``kernel`` and return its final array state.

    ``arrays`` supplies initial contents (copied; the caller's lists are not
    mutated). Missing arrays are zero-initialized at their declared size.
    ``counts``, when given, is filled with dynamic operation counts
    (``load``/``store``/``binop``/``unop``/``select``) — the ledger the
    conformance oracle (:mod:`repro.check.oracle`) diffs against DFG
    firing counts on the memory-op subset. ``max_iterations`` bounds
    total loop iterations (the fuzzer's shrinker lowers it so a shrink
    candidate that lost its loop increment fails fast instead of
    spinning to the 50M default).
    """
    params = dict(params or {})
    missing = set(kernel.params) - set(params)
    if missing:
        raise IRError(f"missing kernel parameters: {sorted(missing)}")
    memory: dict[str, list] = {}
    for spec in kernel.arrays:
        if arrays and spec.name in arrays:
            initial = list(arrays[spec.name])
            if len(initial) != spec.size:
                raise IRError(
                    f"array {spec.name!r}: got {len(initial)} words, "
                    f"declared {spec.size}"
                )
            memory[spec.name] = initial
        else:
            zero = 0 if spec.dtype == "i" else 0.0
            memory[spec.name] = [zero] * spec.size
    interp = _Interp(memory, counts, max_iterations)
    interp.run_block(kernel.body, dict(params))
    return memory


class _Interp:
    def __init__(
        self,
        memory: dict[str, list],
        counts: dict[str, int] | None = None,
        max_iterations: int = MAX_LOOP_ITERATIONS,
    ):
        self.memory = memory
        self.iterations = 0
        self.max_iterations = max_iterations
        #: Optional dynamic op-count ledger (None = off, zero overhead).
        self.counts = counts

    def _count(self, op: str) -> None:
        self.counts[op] = self.counts.get(op, 0) + 1

    def eval(self, expr: Expr, env: dict) -> int | float:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise IRError(f"undefined variable {expr.name!r}") from None
        if isinstance(expr, BinOp):
            if self.counts is not None:
                self._count("binop")
            return apply_binop(
                expr.op, self.eval(expr.lhs, env), self.eval(expr.rhs, env)
            )
        if isinstance(expr, UnOp):
            if self.counts is not None:
                self._count("unop")
            return apply_unop(expr.op, self.eval(expr.operand, env))
        if isinstance(expr, Select):
            # Eager: both arms evaluate regardless of the decider.
            if self.counts is not None:
                self._count("select")
            on_true = self.eval(expr.on_true, env)
            on_false = self.eval(expr.on_false, env)
            return on_true if truthy(self.eval(expr.cond, env)) else on_false
        raise IRError(f"unknown expression {expr!r}")

    def _bump(self) -> None:
        self.iterations += 1
        if self.iterations > self.max_iterations:
            raise IRError("kernel exceeded the loop-iteration safety limit")

    def _access(self, array: str, index: int | float) -> int:
        if index != int(index):
            raise IRError(f"non-integer index {index!r} into {array!r}")
        index = int(index)
        data = self.memory[array]
        if not 0 <= index < len(data):
            raise IRError(
                f"index {index} out of bounds for array {array!r} "
                f"of size {len(data)}"
            )
        return index

    def run_block(self, body: list[Stmt], env: dict) -> None:
        for stmt in body:
            self.run_stmt(stmt, env)

    def run_stmt(self, stmt: Stmt, env: dict) -> None:
        if isinstance(stmt, Assign):
            env[stmt.var] = self.eval(stmt.expr, env)
        elif isinstance(stmt, Load):
            index = self._access(stmt.array, self.eval(stmt.index, env))
            env[stmt.var] = self.memory[stmt.array][index]
            if self.counts is not None:
                self._count("load")
        elif isinstance(stmt, Store):
            index = self._access(stmt.array, self.eval(stmt.index, env))
            self.memory[stmt.array][index] = self.eval(stmt.value, env)
            if self.counts is not None:
                self._count("store")
        elif isinstance(stmt, If):
            if truthy(self.eval(stmt.cond, env)):
                self.run_block(stmt.then_body, env)
            else:
                self.run_block(stmt.else_body, env)
        elif isinstance(stmt, While):
            while truthy(self.eval(stmt.cond, env)):
                self._bump()
                self.run_block(stmt.body, env)
        elif isinstance(stmt, (For, ParFor)):
            lo = self.eval(stmt.lo, env)
            hi = self.eval(stmt.hi, env)
            step = self.eval(stmt.step, env)
            if step <= 0:
                raise IRError(f"loop over {stmt.var!r}: step {step} <= 0")
            index = lo
            # The loop variable and body-local temporaries are scoped to the
            # loop; evaluate in a child env seeded from the parent so writes
            # to pre-existing vars (accumulators) persist.
            while index < hi:
                self._bump()
                env[stmt.var] = index
                self.run_block(stmt.body, env)
                index += step
            env.pop(stmt.var, None)
        elif isinstance(stmt, Par):
            # Blocks are independent by contract; sequential execution is
            # an admissible interleaving.
            for block in stmt.blocks:
                self.run_block(block, dict(env))
        else:
            raise IRError(f"unknown statement type {type(stmt).__name__}")
