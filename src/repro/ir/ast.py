"""Structured kernel IR.

This IR plays the role of effcc's MLIR ``scf``-level representation: kernels
are structured programs over scalar variables and flat arrays, with ``for`` /
``while`` / ``if`` regions and an explicitly parallelizable ``parfor``.

Expressions are side-effect free; memory is touched only through the
:class:`Load` and :class:`Store` statements, which keeps the dataflow
lowering's memory-ordering analysis simple (exactly like effcc's memory
ordering pass operating on dedicated memory operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IRError

#: Binary operators understood by the IR, the DFG and the simulator.
BINARY_OPS = (
    "+", "-", "*", "//", "/", "%",
    "&", "|", "^", "<<", ">>",
    "<", "<=", ">", ">=", "==", "!=",
    "min", "max",
)

#: Unary operators.
UNARY_OPS = ("-", "not", "abs")


class Expr:
    """Base class for IR expressions, with operator-overloading sugar."""

    def __add__(self, other):
        return BinOp("+", self, wrap(other))

    def __radd__(self, other):
        return BinOp("+", wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, wrap(other))

    def __rsub__(self, other):
        return BinOp("-", wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, wrap(other))

    def __rmul__(self, other):
        return BinOp("*", wrap(other), self)

    def __floordiv__(self, other):
        return BinOp("//", self, wrap(other))

    def __rfloordiv__(self, other):
        return BinOp("//", wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", wrap(other), self)

    def __mod__(self, other):
        return BinOp("%", self, wrap(other))

    def __rmod__(self, other):
        return BinOp("%", wrap(other), self)

    def __and__(self, other):
        return BinOp("&", self, wrap(other))

    def __rand__(self, other):
        return BinOp("&", wrap(other), self)

    def __or__(self, other):
        return BinOp("|", self, wrap(other))

    def __ror__(self, other):
        return BinOp("|", wrap(other), self)

    def __xor__(self, other):
        return BinOp("^", self, wrap(other))

    def __rxor__(self, other):
        return BinOp("^", wrap(other), self)

    def __lshift__(self, other):
        return BinOp("<<", self, wrap(other))

    def __rlshift__(self, other):
        return BinOp("<<", wrap(other), self)

    def __rshift__(self, other):
        return BinOp(">>", self, wrap(other))

    def __rrshift__(self, other):
        return BinOp(">>", wrap(other), self)

    def __lt__(self, other):
        return BinOp("<", self, wrap(other))

    def __le__(self, other):
        return BinOp("<=", self, wrap(other))

    def __gt__(self, other):
        return BinOp(">", self, wrap(other))

    def __ge__(self, other):
        return BinOp(">=", self, wrap(other))

    def eq(self, other):
        """Equality comparison (named method: ``==`` is reserved)."""
        return BinOp("==", self, wrap(other))

    def ne(self, other):
        """Inequality comparison (named method: ``!=`` is reserved)."""
        return BinOp("!=", self, wrap(other))

    def __neg__(self):
        return UnOp("-", self)

    def min(self, other):
        return BinOp("min", self, wrap(other))

    def max(self, other):
        return BinOp("max", self, wrap(other))


def wrap(value) -> Expr:
    """Coerce a Python number into a :class:`Const`; pass exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    raise IRError(f"cannot use {value!r} as an IR expression")


@dataclass(frozen=True)
class Const(Expr):
    """A compile-time constant scalar."""

    value: int | float

    def __repr__(self):
        return f"Const({self.value})"


@dataclass(frozen=True)
class Var(Expr):
    """A scalar variable reference (kernel parameter or local)."""

    name: str

    def __repr__(self):
        return f"Var({self.name})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary arithmetic, logical, or comparison operation."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise IRError(f"unknown binary operator {self.op!r}")

    def __repr__(self):
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation."""

    op: str
    operand: Expr

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise IRError(f"unknown unary operator {self.op!r}")

    def __repr__(self):
        return f"({self.op} {self.operand!r})"


@dataclass(frozen=True)
class Select(Expr):
    """Eager ternary: both arms evaluate; the decider picks one.

    Unlike an ``If`` statement, a select introduces no control flow in the
    dataflow graph — it lowers to a single select node, which is cheaper
    than steer/merge gating when both arms are inexpensive to compute.
    """

    cond: Expr
    on_true: Expr
    on_false: Expr

    def __repr__(self):
        return (
            f"select({self.cond!r}, {self.on_true!r}, {self.on_false!r})"
        )


def select(cond, on_true, on_false) -> Select:
    """Build an eager ternary expression."""
    return Select(wrap(cond), wrap(on_true), wrap(on_false))


class Stmt:
    """Base class for IR statements."""


@dataclass
class Assign(Stmt):
    """``var = expr``."""

    var: str
    expr: Expr


@dataclass
class Load(Stmt):
    """``var = array[index]``."""

    var: str
    array: str
    index: Expr


@dataclass
class Store(Stmt):
    """``array[index] = value``."""

    array: str
    index: Expr
    value: Expr


@dataclass
class If(Stmt):
    """Two-armed conditional; either arm may be empty."""

    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    """``while cond: body``. ``cond`` must be load-free."""

    cond: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """Counted loop ``for var in range(lo, hi, step)``; step > 0."""

    var: str
    lo: Expr
    hi: Expr
    step: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class ParFor(Stmt):
    """A counted loop whose iterations are independent and parallelizable.

    Iterations may freely read shared state but must not assign scalar
    variables defined outside the loop; stores from distinct iterations must
    target distinct addresses (the validator enforces the former, tests
    enforce the latter by checking final memory against a reference).
    """

    var: str
    lo: Expr
    hi: Expr
    step: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Par(Stmt):
    """Explicitly parallel blocks (produced by the parallelizer).

    Each block executes concurrently with independent scalar state; the
    lowering forks and re-joins memory-ordering chains around the blocks.
    """

    blocks: list[list[Stmt]] = field(default_factory=list)


@dataclass(frozen=True)
class ArraySpec:
    """Declares a flat array of ``size`` words of ``dtype`` ('i' or 'f')."""

    name: str
    size: int
    dtype: str = "i"

    def __post_init__(self):
        if self.dtype not in ("i", "f"):
            raise IRError(f"array {self.name}: dtype must be 'i' or 'f'")
        if self.size <= 0:
            raise IRError(f"array {self.name}: size must be positive")


@dataclass
class Kernel:
    """A complete kernel: parameters, array declarations, and a body.

    Parameters are launch-time scalars (they become immediates in the DFG,
    like Monaco's ``xdata`` program arguments). Arrays live in the simulated
    flat memory; the launcher assigns each a base address.
    """

    name: str
    params: list[str]
    arrays: list[ArraySpec]
    body: list[Stmt]

    def array(self, name: str) -> ArraySpec:
        """Return the spec for a declared array."""
        for spec in self.arrays:
            if spec.name == name:
                return spec
        raise IRError(f"kernel {self.name}: no array named {name!r}")

    def array_names(self) -> list[str]:
        return [spec.name for spec in self.arrays]


def walk_stmts(body: list[Stmt]):
    """Yield every statement in ``body``, recursively, in program order."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, (While, For, ParFor)):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, Par):
            for block in stmt.blocks:
                yield from walk_stmts(block)


def walk_exprs(expr: Expr):
    """Yield ``expr`` and every sub-expression."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_exprs(expr.lhs)
        yield from walk_exprs(expr.rhs)
    elif isinstance(expr, UnOp):
        yield from walk_exprs(expr.operand)
    elif isinstance(expr, Select):
        yield from walk_exprs(expr.cond)
        yield from walk_exprs(expr.on_true)
        yield from walk_exprs(expr.on_false)


def expr_vars(expr: Expr) -> set[str]:
    """The set of variable names referenced by ``expr``."""
    return {e.name for e in walk_exprs(expr) if isinstance(e, Var)}


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """The expressions directly embedded in ``stmt`` (not nested bodies)."""
    if isinstance(stmt, Assign):
        return [stmt.expr]
    if isinstance(stmt, Load):
        return [stmt.index]
    if isinstance(stmt, Store):
        return [stmt.index, stmt.value]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, While):
        return [stmt.cond]
    if isinstance(stmt, (For, ParFor)):
        return [stmt.lo, stmt.hi, stmt.step]
    if isinstance(stmt, Par):
        return []
    raise IRError(f"unknown statement type {type(stmt).__name__}")
