"""Structured kernel IR: the frontend of the reproduction's compiler stack."""

from repro.ir.ast import (
    ArraySpec,
    Assign,
    BinOp,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    Par,
    ParFor,
    Select,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    select,
    wrap,
)
from repro.ir.builder import KernelBuilder
from repro.ir.interp import run_kernel
from repro.ir.transform import parallelize
from repro.ir.validate import validate_kernel

__all__ = [
    "ArraySpec",
    "Assign",
    "BinOp",
    "Const",
    "Expr",
    "For",
    "If",
    "Kernel",
    "KernelBuilder",
    "Load",
    "Par",
    "ParFor",
    "Select",
    "Stmt",
    "Store",
    "UnOp",
    "Var",
    "While",
    "parallelize",
    "run_kernel",
    "select",
    "validate_kernel",
    "wrap",
]
