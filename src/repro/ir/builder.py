"""Ergonomic construction of kernel IR.

:class:`KernelBuilder` is the user-facing frontend of the compiler stack: it
plays the role of writing C for effcc. Statements are appended to the block
that is currently open; ``for`` / ``parfor`` / ``while`` / ``if`` regions are
opened with context managers.

Example (dot product)::

    b = KernelBuilder("dot", params=["n"])
    x = b.array("x", 64, "f")
    y = b.array("y", 64, "f")
    out = b.array("out", 1, "f")
    acc = b.let("acc", 0.0)
    with b.for_("i", 0, b.p.n) as i:
        b.set(acc, acc + x.load(i) * y.load(i))
    out.store(0, acc)
    kernel = b.build()
"""

from __future__ import annotations

import contextlib
from types import SimpleNamespace

from repro.errors import IRError
from repro.ir.ast import (
    ArraySpec,
    Assign,
    Const,
    Expr,
    For,
    If,
    Kernel,
    Load,
    ParFor,
    Stmt,
    Store,
    Var,
    While,
    wrap,
)
from repro.ir.validate import validate_kernel


class ArrayHandle:
    """A declared array, offering ``load`` / ``store`` sugar."""

    def __init__(self, builder: "KernelBuilder", spec: ArraySpec):
        self._builder = builder
        self.spec = spec
        self.name = spec.name

    def load(self, index, name: str | None = None) -> Var:
        """Emit ``name = array[index]`` and return the destination var."""
        dest = name or self._builder.fresh(f"{self.name}_ld")
        self._builder.emit(Load(dest, self.name, wrap(index)))
        return Var(dest)

    def store(self, index, value) -> None:
        """Emit ``array[index] = value``."""
        self._builder.emit(Store(self.name, wrap(index), wrap(value)))


class KernelBuilder:
    """Incrementally builds a :class:`~repro.ir.ast.Kernel`."""

    def __init__(self, name: str, params: list[str] | None = None):
        self.name = name
        self.params = list(params or [])
        self._arrays: list[ArraySpec] = []
        self._body: list[Stmt] = []
        self._blocks: list[list[Stmt]] = [self._body]
        self._fresh_counter = 0
        self._built = False
        self._else_used: set[int] = set()
        #: Parameter vars, accessible as attributes: ``b.p.n``.
        self.p = SimpleNamespace(**{n: Var(n) for n in self.params})

    # -- declarations ------------------------------------------------------

    def array(self, name: str, size: int, dtype: str = "i") -> ArrayHandle:
        """Declare a flat array and return a handle for loads/stores."""
        if any(spec.name == name for spec in self._arrays):
            raise IRError(f"array {name!r} declared twice")
        spec = ArraySpec(name, size, dtype)
        self._arrays.append(spec)
        return ArrayHandle(self, spec)

    def fresh(self, hint: str = "t") -> str:
        """Return a fresh variable name."""
        self._fresh_counter += 1
        return f"%{hint}{self._fresh_counter}"

    # -- straight-line statements -----------------------------------------

    def emit(self, stmt: Stmt) -> None:
        """Append a statement to the currently open block."""
        if self._built:
            raise IRError("builder already finalized")
        self._blocks[-1].append(stmt)

    def let(self, name: str, expr) -> Var:
        """Emit ``name = expr`` for a new variable and return its Var."""
        self.emit(Assign(name, wrap(expr)))
        return Var(name)

    def set(self, var: Var | str, expr) -> None:
        """Emit an assignment to an existing variable."""
        name = var.name if isinstance(var, Var) else var
        self.emit(Assign(name, wrap(expr)))

    # -- regions -----------------------------------------------------------

    @contextlib.contextmanager
    def for_(self, var: str, lo, hi, step=1):
        """Open a counted sequential loop; yields the induction Var."""
        stmt = For(var, wrap(lo), wrap(hi), wrap(step))
        self.emit(stmt)
        self._blocks.append(stmt.body)
        try:
            yield Var(var)
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def parfor(self, var: str, lo, hi, step=1):
        """Open a parallelizable counted loop; yields the induction Var."""
        stmt = ParFor(var, wrap(lo), wrap(hi), wrap(step))
        self.emit(stmt)
        self._blocks.append(stmt.body)
        try:
            yield Var(var)
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def while_(self, cond):
        """Open a while loop whose condition is re-evaluated each iteration."""
        stmt = While(wrap(cond))
        self.emit(stmt)
        self._blocks.append(stmt.body)
        try:
            yield
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def if_(self, cond):
        """Open the then-branch of a conditional."""
        stmt = If(wrap(cond))
        self.emit(stmt)
        self._blocks.append(stmt.then_body)
        try:
            yield
        finally:
            self._blocks.pop()

    @contextlib.contextmanager
    def else_(self):
        """Open the else-branch of the most recently closed conditional."""
        block = self._blocks[-1]
        if not block or not isinstance(block[-1], If):
            raise IRError("else_() must directly follow an if_() block")
        stmt = block[-1]
        if id(stmt) in self._else_used:
            raise IRError("this conditional already has an else branch")
        self._else_used.add(id(stmt))
        self._blocks.append(stmt.else_body)
        try:
            yield
        finally:
            self._blocks.pop()

    # -- finalization --------------------------------------------------

    def build(self, validate: bool = True) -> Kernel:
        """Finalize and (by default) validate the kernel."""
        if len(self._blocks) != 1:
            raise IRError("build() called with an open region")
        self._built = True
        kernel = Kernel(self.name, self.params, self._arrays, self._body)
        if validate:
            validate_kernel(kernel)
        return kernel


def const(value) -> Const:
    """Convenience: wrap a Python number as an IR constant."""
    return wrap(value)


__all__ = ["KernelBuilder", "ArrayHandle", "const", "Expr", "Var"]
