"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Malformed kernel IR (bad builder usage, failed validation)."""


class LoweringError(ReproError):
    """The IR could not be lowered to a dataflow graph."""


class DFGError(ReproError):
    """Malformed dataflow graph or illegal DFG operation."""


class ArchError(ReproError):
    """Inconsistent architecture description (fabric, NoC, memory)."""


class PnRError(ReproError):
    """Place-and-route failure (no legal placement or unroutable design)."""


class RoutingError(PnRError):
    """The router could not route all nets within track capacity."""


class PlacementError(PnRError):
    """No legal placement exists (e.g. more memory nodes than LS PEs)."""


class SimulationError(ReproError):
    """The timed simulator reached an illegal state."""


class DeadlockError(SimulationError):
    """No forward progress while tokens remain in flight."""


class ExperimentError(ReproError):
    """Experiment harness misconfiguration."""


class ValidationError(ReproError):
    """A simulated run computed the wrong answer.

    Carries enough context (workload, output array, index, got/want) for
    the sweep supervisor to classify wrong-answer runs separately from
    infrastructure failures — a reference mismatch is a *correctness*
    bug, never something a retry can fix.
    """

    def __init__(
        self,
        message: str,
        *,
        workload: str | None = None,
        array: str | None = None,
        index: int | None = None,
        got=None,
        want=None,
    ):
        super().__init__(message)
        self.workload = workload
        self.array = array
        self.index = index
        self.got = got
        self.want = want


class JobTimeout(ReproError):
    """A supervised sweep job exceeded its per-job wall-clock budget."""


class SnapshotError(ReproError):
    """A simulation snapshot could not be written, read, or resumed.

    Covers torn files (a crash between write and rename), checksum or
    version mismatches, a config digest that does not match the resuming
    run, and double-resume of a single-use snapshot. Deliberately *not* a
    :class:`SimulationError`: a bad snapshot says nothing about the
    simulated machine, and the sweep supervisor must never classify it
    as a deterministic simulation failure.
    """


class SimulationPreempted(ReproError):
    """A run was preempted cooperatively after writing a snapshot.

    Raised by the engine's checkpoint boundary when a watchdog requested
    preemption (SIGTERM/SIGINT, wall-clock budget, cycle budget). The
    snapshot named by :attr:`snapshot_path` holds the complete machine
    state at :attr:`cycle`; resuming from it continues bit-identically.
    Not a :class:`SimulationError` — preemption is scheduling, not a
    property of the simulated machine — so the sweep supervisor may
    retry it (and the retry resumes from the snapshot).
    """

    def __init__(
        self,
        message: str,
        *,
        kind: str = "preempted",
        snapshot_path: str | None = None,
        cycle: int | None = None,
    ):
        super().__init__(message)
        #: Supervisor taxonomy bucket: ``"preempted"`` (signal / cycle
        #: budget) or ``"timeout"`` (the grace path of a job timeout).
        self.kind = kind
        self.snapshot_path = snapshot_path
        self.cycle = cycle

    def __reduce__(self):
        # Keyword-only attributes are not captured by ``self.args``, so
        # the default exception reduce would drop them when a process
        # pool pickles the exception back to the supervisor.
        return (
            _rebuild_preempted,
            (str(self), self.kind, self.snapshot_path, self.cycle),
        )


def _rebuild_preempted(message, kind, snapshot_path, cycle):
    return SimulationPreempted(
        message, kind=kind, snapshot_path=snapshot_path, cycle=cycle
    )
