"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class IRError(ReproError):
    """Malformed kernel IR (bad builder usage, failed validation)."""


class LoweringError(ReproError):
    """The IR could not be lowered to a dataflow graph."""


class DFGError(ReproError):
    """Malformed dataflow graph or illegal DFG operation."""


class ArchError(ReproError):
    """Inconsistent architecture description (fabric, NoC, memory)."""


class PnRError(ReproError):
    """Place-and-route failure (no legal placement or unroutable design)."""


class RoutingError(PnRError):
    """The router could not route all nets within track capacity."""


class PlacementError(PnRError):
    """No legal placement exists (e.g. more memory nodes than LS PEs)."""


class SimulationError(ReproError):
    """The timed simulator reached an illegal state."""


class DeadlockError(SimulationError):
    """No forward progress while tokens remain in flight."""


class ExperimentError(ReproError):
    """Experiment harness misconfiguration."""


class ValidationError(ReproError):
    """A simulated run computed the wrong answer.

    Carries enough context (workload, output array, index, got/want) for
    the sweep supervisor to classify wrong-answer runs separately from
    infrastructure failures — a reference mismatch is a *correctness*
    bug, never something a retry can fix.
    """

    def __init__(
        self,
        message: str,
        *,
        workload: str | None = None,
        array: str | None = None,
        index: int | None = None,
        got=None,
        want=None,
    ):
        super().__init__(message)
        self.workload = workload
        self.array = array
        self.index = index
        self.got = got
        self.want = want


class JobTimeout(ReproError):
    """A supervised sweep job exceeded its per-job wall-clock budget."""
